"""Higher-order test generation: the paper's core contribution (Section 4).

:class:`HigherOrderBackend` derives new tests from *validity proofs* of
``POST(ALT(pc)) = ∃X : A ⇒ ALT(pc)`` with universally quantified UF
symbols, where ``A`` is the antecedent of recorded IOF samples.  A validity
proof yields a :class:`~repro.solver.validity.Strategy`; interpreting the
strategy may require *learning new samples* by running intermediate tests —
the paper's multi-step test generation (Example 7), implemented by
:class:`MultiStepDriver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import StrategyError
from ..solver.budget import SolverBudget
from ..solver.terms import Term, TermManager
from ..solver.validity import (
    AppValue,
    Sample,
    SampleRequest,
    Strategy,
    ValidityChecker,
    ValidityResult,
    ValidityStatus,
)
from ..search.request import GeneratedTest, GenerationRequest
from .post import alternate_constraint, build_post
from .samples import SampleStore

__all__ = ["HigherOrderBackend", "MultiStepDriver", "ProbeOutcome", "plan_validity"]


def plan_validity(
    tm: TermManager,
    request: GenerationRequest,
    samples: Sequence[Sample],
    use_antecedent: bool = True,
    max_candidates: int = 24,
    budget: Optional[SolverBudget] = None,
) -> ValidityResult:
    """The pure planning half of higher-order generation.

    Deterministic in (the structure of) ``request`` and ``samples``: no
    probe runs, no store access, no shared mutable state — which is what
    lets the parallel frontier expander speculate it on worker threads
    against an imported copy of the request.  ``budget`` scopes a
    :class:`~repro.solver.budget.SolverBudget` over the validity check
    (the degradation ladder escalates it for deferred retries).
    """
    alt = alternate_constraint(tm, request.conditions, request.index)
    checker = ValidityChecker(
        tm, max_candidates=max_candidates, use_antecedent=use_antecedent,
        budget=budget,
    )
    return checker.check(
        alt,
        list(request.input_vars.values()),
        samples,
        defaults=request.defaults,
    )


@dataclass
class ProbeOutcome:
    """Result of one intermediate (probe) run in multi-step generation."""

    inputs: Dict[str, int]
    new_samples: int
    resolved: bool


class MultiStepDriver:
    """Resolves pending sample requests by running intermediate tests.

    The paper's Example 7: the strategy "set y := 10, set x := h(10)" is
    derived from a validity proof, but h(10) has never been sampled.  An
    intermediate test (with y = 10 and x arbitrary) is run so the program
    itself evaluates h at 10; the recorded sample then completes the
    strategy.

    ``probe_runner`` is a callback ``inputs -> None`` that executes the
    program concolically and merges the observed samples into ``store``
    (the directed search supplies it).
    """

    def __init__(
        self,
        store: SampleStore,
        probe_runner: Callable[[Dict[str, int]], None],
        max_steps: int = 4,
    ) -> None:
        self.store = store
        self.probe_runner = probe_runner
        self.max_steps = max_steps
        self.probes: List[ProbeOutcome] = []

    def resolve(
        self, strategy: Strategy, defaults: Dict[str, int]
    ) -> Optional[Dict[str, int]]:
        """Concretize ``strategy``, probing for missing samples as needed.

        Returns the final input vector, or None when the pending samples
        could not be learned within ``max_steps`` probe runs.
        """
        for _ in range(self.max_steps + 1):
            pending = strategy.pending(self.store.samples())
            if not pending:
                return strategy.concretize(self.store.samples())
            if len(self.probes) >= self.max_steps:
                return None
            probe_inputs = self._probe_inputs(strategy, defaults)
            before = len(self.store)
            self.probe_runner(probe_inputs)
            outcome = ProbeOutcome(
                inputs=probe_inputs,
                new_samples=len(self.store) - before,
                resolved=not strategy.pending(self.store.samples()),
            )
            self.probes.append(outcome)
            if outcome.new_samples == 0:
                # the probe taught us nothing; a further identical probe
                # would not either
                return None
        return None

    def _probe_inputs(
        self, strategy: Strategy, defaults: Dict[str, int]
    ) -> Dict[str, int]:
        """Inputs for an intermediate run: keep the strategy's concrete
        assignments (they steer execution towards the needed call sites),
        fill unresolved ones with the previous run's values."""
        inputs: Dict[str, int] = {}
        table = self.store.as_table()
        for name, value in strategy.assignments.items():
            if isinstance(value, AppValue):
                known = value.resolve(table)
                inputs[name] = known if known is not None else defaults.get(name, 0)
            else:
                inputs[name] = value
        return inputs


class HigherOrderBackend:
    """Test generation from validity proofs (paper Figure 3 + Section 4.2).

    Parameters
    ----------
    manager:
        Shared term manager (same one the concolic engine uses).
    store:
        The session's IOF :class:`SampleStore`.
    probe_runner:
        Callback executing the program on given inputs and merging the
        resulting samples into ``store`` — enables multi-step generation.
    use_antecedent:
        Include recorded samples as the antecedent ``A`` (switchable for
        the Example 4 / ablation experiments).
    max_steps:
        Budget of intermediate runs per generated test.
    """

    name = "higher-order"

    def __init__(
        self,
        manager: TermManager,
        store: SampleStore,
        probe_runner: Optional[Callable[[Dict[str, int]], None]] = None,
        use_antecedent: bool = True,
        max_steps: int = 4,
        max_candidates: int = 24,
    ) -> None:
        self.tm = manager
        self.store = store
        self.probe_runner = probe_runner
        self.use_antecedent = use_antecedent
        self.max_steps = max_steps
        self.max_candidates = max_candidates
        self.solver_calls = 0
        #: per-request validity verdicts, for experiment reporting
        self.verdicts: List[ValidityResult] = []
        #: total intermediate probe runs spent on multi-step generation
        self.total_probe_runs = 0

    def generate(self, request: GenerationRequest) -> Optional[GeneratedTest]:
        return self.apply_plan(request, self.plan_request(request, self.store.samples()))

    def plan_request(
        self, request: GenerationRequest, samples: Sequence[Sample]
    ) -> ValidityResult:
        """Pure planning: decide validity of ``ALT(pc)`` against ``samples``."""
        return plan_validity(
            self.tm,
            request,
            samples,
            use_antecedent=self.use_antecedent,
            max_candidates=self.max_candidates,
        )

    def apply_plan(
        self, request: GenerationRequest, verdict: ValidityResult
    ) -> Optional[GeneratedTest]:
        """The stateful finishing half: record the verdict, concretize the
        strategy against the *live* store, probing (multi-step) if needed.

        Strategies reference :class:`FunctionSymbol` objects, which are
        shared across term managers, so a verdict planned on an imported
        copy of the request concretizes directly against this store.
        """
        self.solver_calls += 1
        self.verdicts.append(verdict)
        if verdict.status is not ValidityStatus.VALID or verdict.strategy is None:
            return None

        strategy = verdict.strategy
        pending = strategy.pending(self.store.samples())
        if not pending:
            return GeneratedTest(
                inputs=strategy.concretize(self.store.samples()),
                note=f"validity proof ({verdict.note})",
            )
        if self.probe_runner is None:
            return None  # multi-step required but no probe runner wired
        driver = MultiStepDriver(self.store, self.probe_runner, self.max_steps)
        inputs = driver.resolve(strategy, request.defaults)
        self.total_probe_runs += len(driver.probes)
        if inputs is None:
            return None
        return GeneratedTest(
            inputs=inputs,
            intermediate_runs=len(driver.probes),
            note=f"multi-step validity proof ({len(driver.probes)} probes)",
        )

    def post_formula(self, request: GenerationRequest):
        """The structured ``POST(ALT(pc))`` for display/diagnostics."""
        return build_post(
            self.tm,
            request.conditions,
            request.index,
            list(request.input_vars.values()),
            self.store.samples() if self.use_antecedent else [],
        )
