"""The IOF table: uninterpreted-function samples observed at runtime.

Line 13 of the paper's Figure 3 records, for every unknown-function call,
the pair ``(concrete result, f(concrete args))``.  :class:`SampleStore`
accumulates those pairs across runs of a testing session, deduplicates
them, and can persist them to disk — enabling the paper's §7 suggestion of
*learning samples over time* from previous executions ("use all pairs
recorded in all previous executions in subsequent symbolic executions").
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError
from ..solver.terms import FunctionSymbol, TermManager
from ..solver.validity import Sample

__all__ = ["SampleStore"]


class SampleStore:
    """Accumulates (and optionally persists) IOF samples.

    Samples are keyed by (function symbol, argument tuple); re-recording an
    existing point is a no-op, and recording a *different* value for an
    existing point raises — unknown functions are deterministic (the
    assumption behind the paper's Theorem 3).
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[FunctionSymbol, Tuple[int, ...]], int] = {}
        self._order: List[Sample] = []

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Tuple[FunctionSymbol, Tuple[int, ...]]) -> bool:
        return key in self._table

    def add(self, sample: Sample) -> bool:
        """Record one sample; returns True if it was new."""
        key = (sample.fn, sample.args)
        existing = self._table.get(key)
        if existing is not None:
            if existing != sample.value:
                raise ReproError(
                    f"non-deterministic unknown function: {sample.fn.name}"
                    f"{sample.args} was {existing}, now {sample.value}"
                )
            return False
        self._table[key] = sample.value
        self._order.append(sample)
        return True

    def add_all(self, samples: Iterable[Sample]) -> int:
        """Record many samples; returns how many were new."""
        return sum(1 for s in samples if self.add(s))

    def merge_from_run(self, result) -> int:
        """Record every sample a concolic run observed (Fig. 3 line 13)."""
        return self.add_all(result.samples)

    def samples(self) -> List[Sample]:
        """All recorded samples in observation order."""
        return list(self._order)

    def as_table(self) -> Dict[Tuple[FunctionSymbol, Tuple[int, ...]], int]:
        """The samples as a lookup table (copy)."""
        return dict(self._table)

    def for_function(self, fn: FunctionSymbol) -> List[Sample]:
        return [s for s in self._order if s.fn is fn]

    def has(self, fn: FunctionSymbol, args: Tuple[int, ...]) -> bool:
        return (fn, args) in self._table

    def value(self, fn: FunctionSymbol, args: Tuple[int, ...]) -> Optional[int]:
        return self._table.get((fn, args))

    def preimages(self, fn: FunctionSymbol, value: int) -> List[Tuple[int, ...]]:
        """All recorded argument tuples mapping to ``value`` (hash inversion)."""
        return [
            args for (f, args), v in self._table.items() if f is fn and v == value
        ]

    # -- persistence (cross-session learning, paper §7) -----------------------

    def save(self, path: str) -> None:
        """Serialize all samples to a JSON file."""
        payload = [
            {
                "fn": s.fn.name,
                "arity": s.fn.arity,
                "args": list(s.args),
                "value": s.value,
            }
            for s in self._order
        ]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)

    @classmethod
    def load(cls, path: str, manager: TermManager) -> "SampleStore":
        """Load samples, re-creating function symbols in ``manager``."""
        store = cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for entry in payload:
            fn = manager.mk_function(entry["fn"], entry["arity"])
            store.add(Sample(fn, tuple(entry["args"]), entry["value"]))
        return store

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self._order[:8])
        more = f", ... ({len(self._order)} total)" if len(self._order) > 8 else ""
        return f"SampleStore[{inner}{more}]"
