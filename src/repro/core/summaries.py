"""Compositional function summaries (paper §8, related work [11, 17]).

A *function summary* is a disjunction of intraprocedural path constraints,
each paired with the function's symbolic return value on that path:

    φ_g  =  ⋁_i ( guard_i(p̄) ∧ ret = ret_i(p̄) )

Summaries are discovered incrementally by directed exploration of the
callee in isolation (the "demand-driven" regime of [1]); each discovered
case is a *must* fact: any argument vector satisfying ``guard_i`` makes
``g`` return ``ret_i``.  Unknown functions inside the callee appear as UF
applications in both guards and return terms, so summaries compose with
higher-order test generation — the combination the paper names
"higher-order compositional test generation" and declares orthogonal; this
module realizes it.

Typical use: answer caller-level reachability queries without re-inlining
the callee — see :class:`CompositionalReachability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..solver.smt import Solver
from ..solver.terms import Term, TermManager
from ..solver.validity import Sample, ValidityChecker, ValidityResult
from ..symbolic.concolic import ConcolicEngine, ConcretizationMode
from .samples import SampleStore

__all__ = [
    "SummaryCase",
    "FunctionSummary",
    "SummaryExtractor",
    "CompositionalReachability",
]


@dataclass(frozen=True)
class SummaryCase:
    """One intraprocedural path: guard over the parameters + return term."""

    guard: Term
    ret: Term
    #: branch trace identifying the path (dedup key)
    path_key: Tuple[Tuple[int, bool], ...]

    def __str__(self) -> str:
        return f"{self.guard} → ret = {self.ret}"


@dataclass
class FunctionSummary:
    """A (partial, growing) summary of one MiniC function."""

    name: str
    #: formal parameter variables the guards/returns are expressed over
    params: List[Term]
    cases: List[SummaryCase] = field(default_factory=list)
    _keys: Set[Tuple[Tuple[int, bool], ...]] = field(default_factory=set)

    def add_case(self, case: SummaryCase) -> bool:
        """Add a case; returns False if this path was already summarized."""
        if case.path_key in self._keys:
            return False
        self._keys.add(case.path_key)
        self.cases.append(case)
        return True

    def instantiate(
        self,
        tm: TermManager,
        args: Sequence[Term],
        ret: Term,
    ) -> Term:
        """The summary disjunction with ``args`` for params and ``ret`` bound.

        ``⋁_i guard_i[p̄ := args] ∧ ret = ret_i[p̄ := args]`` — a sound
        *under-approximation* of the callee's behaviour: every disjunct is
        a must fact, so any model yields a real caller execution.
        """
        if len(args) != len(self.params):
            raise ReproError(
                f"summary of {self.name} has {len(self.params)} params, "
                f"got {len(args)} arguments"
            )
        mapping = dict(zip(self.params, args))
        disjuncts = []
        for case in self.cases:
            guard = tm.substitute(case.guard, mapping)
            ret_val = tm.substitute(case.ret, mapping)
            disjuncts.append(tm.mk_and(guard, tm.mk_eq(ret, ret_val)))
        return tm.mk_or(*disjuncts) if disjuncts else tm.false_

    def __str__(self) -> str:
        inner = "\n  ∨ ".join(str(c) for c in self.cases)
        ps = ", ".join(p.name or "?" for p in self.params)
        return f"summary {self.name}({ps}):\n    {inner}"


class SummaryExtractor:
    """Discovers summary cases by concolically exploring a function.

    Each exploration run of the callee (in isolation, with its parameters
    as symbolic inputs) contributes one case: the conjunction of the run's
    path conditions as the guard, and the run's symbolic return value.
    Exploration is driven by the same directed search used for whole
    programs.
    """

    def __init__(
        self,
        program: Program,
        natives: NativeRegistry,
        manager: Optional[TermManager] = None,
        mode: ConcretizationMode = ConcretizationMode.HIGHER_ORDER,
    ) -> None:
        self.program = program
        self.natives = natives
        self.tm = manager if manager is not None else TermManager()
        self.mode = mode
        self.store = SampleStore()

    def extract(
        self,
        fn_name: str,
        seed_inputs: Dict[str, int],
        max_runs: int = 30,
        extra_seeds: Sequence[Dict[str, int]] = (),
    ) -> FunctionSummary:
        """Explore ``fn_name`` and return the accumulated summary.

        ``extra_seeds`` matter when the callee branches on unknown
        functions: paths like ``hash(v) > 500`` cannot be *generated*
        soundly until a sample witnessing them exists, so a representative
        seed corpus (the §7 well-formed-inputs idea) seeds those paths.
        """
        from ..search.directed import DirectedSearch, SearchConfig

        fn = self.program.function(fn_name)
        params = [self.tm.mk_var(p) for p in fn.params]
        summary = FunctionSummary(name=fn_name, params=params)

        for seed in [dict(seed_inputs)] + [dict(s) for s in extra_seeds]:
            search = DirectedSearch.for_mode(
                self.program,
                fn_name,
                self.natives,
                self.mode,
                SearchConfig(max_runs=max_runs),
                manager=self.tm,
                store=self.store,
            )
            result = search.run(seed)
            for record in result.executions:
                run = record.result
                if run.error:
                    continue  # erroring paths have no return value
                guard = self.tm.mk_and(
                    *[pc.term for pc in run.path_conditions]
                )
                ret = (
                    run.returned_term
                    if run.returned_term is not None
                    else self.tm.mk_int(
                        run.returned if run.returned is not None else 0
                    )
                )
                summary.add_case(
                    SummaryCase(guard=guard, ret=ret, path_key=run.path_key)
                )
        return summary


class CompositionalReachability:
    """Answer caller-level queries through callee summaries.

    Given a caller-side condition over a summarized call's result — e.g.
    "can ``g(x, y) == 42`` hold?" — build the formula

        φ_g[p̄ := args, ret := r] ∧ condition(r)

    and decide it.  Two decision modes mirror the paper's dichotomy:

    - :meth:`check_sat` — plain satisfiability (the compositional testing
      of [11, 17], all UFs existential);
    - :meth:`check_validity` — the higher-order combination: UFs inside
      the summary stay universal and recorded samples form the
      antecedent, giving *usable* tests even when the callee body called
      unknown functions.
    """

    def __init__(self, manager: TermManager, store: Optional[SampleStore] = None) -> None:
        self.tm = manager
        self.store = store if store is not None else SampleStore()

    def check_sat(
        self,
        summary: FunctionSummary,
        args: Sequence[Term],
        condition_on: Term,
        ret_var: Optional[Term] = None,
    ):
        """Satisfiability of ``summary(args) = r ∧ condition_on(r)``.

        ``condition_on`` must be a boolean term over ``ret_var`` (and any
        caller inputs).  Returns the solver's CheckResult.
        """
        ret = ret_var if ret_var is not None else self.tm.fresh_var("_ret")
        formula = self.tm.mk_and(
            summary.instantiate(self.tm, args, ret), condition_on
        )
        solver = Solver(self.tm)
        solver.add(formula)
        return solver.check()

    def check_validity(
        self,
        summary: FunctionSummary,
        args: Sequence[Term],
        condition_on: Term,
        input_vars: Sequence[Term],
        ret_var: Optional[Term] = None,
        defaults: Optional[Dict[str, int]] = None,
    ) -> ValidityResult:
        """Higher-order compositional query: validity with UF antecedent.

        The existential block covers the caller inputs *and* the summary's
        return placeholder; unknown functions referenced by the summary
        remain universally quantified, constrained by the sample store.
        """
        ret = ret_var if ret_var is not None else self.tm.fresh_var("_ret")
        formula = self.tm.mk_and(
            summary.instantiate(self.tm, args, ret), condition_on
        )
        checker = ValidityChecker(self.tm)
        exists = list(input_vars) + [ret]
        return checker.check(
            formula, exists, self.store.samples(), defaults=defaults
        )
