"""Deterministic fault injection: make the engine's failure paths testable.

Production concolic engines survive solver exhaustion, crashing programs
under test, worker failures, and disk errors.  Surviving code paths that
never run in CI rot, so this module provides a *seeded, deterministic*
:class:`FaultPlan` that forces those failures at chosen points:

========== ===============================================================
site       what fires there
========== ===============================================================
solver     :class:`~repro.errors.ResourceLimitError` at the start of an
           SMT check (stateless :class:`~repro.solver.smt.Solver` and
           :class:`~repro.solver.session.SolverSession` alike) —
           exercises the degradation ladder
interp     :class:`~repro.errors.StepBudgetExceeded` at the start of a
           concolic run — exercises crash containment
worker     ``RuntimeError`` inside a speculative flip plan on a worker
           thread — exercises the serial-recompute fallback
scheduler  ``RuntimeError`` when the frontier scheduler picks the next
           pending run — exercises the kernel's FIFO containment
           fallback (see :meth:`repro.search.kernel.SearchKernel.schedule`)
worker-proc ``RuntimeError`` standing in for a killed campaign worker
           *process* — exercises the batch engine's in-process recompute
           (see :mod:`repro.engine.runner`)
journal    ``OSError`` on a journal write — exercises sink disabling
checkpoint ``OSError`` on a checkpoint write — exercises checkpoint
           disabling
kill       :class:`~repro.errors.SearchInterrupted` at a run boundary —
           exercises checkpoint/resume
hang       a simulated *wedged* worker: the search kernel stops making
           progress at a run boundary (sleeping, heartbeats silent) until
           the job deadline or the supervisor's watchdog reclaims it —
           exercises deadline enforcement and stall detection.  Decided
           in the campaign parent at dispatch time (one consultation per
           job, in job order, like ``worker-proc``) and only ever applied
           to a job's *first* attempt, so retries are answer-preserving
pool       the worker pool breaks (``BrokenProcessPool`` stand-in) while
           the job runs — exercises the supervisor's rebuild-once path.
           Dispatch-time like ``hang``
service    :class:`~repro.errors.SearchInterrupted` inside the campaign
           service's scheduler, right after a job lease is granted but
           before it is dispatched — stands in for killing ``repro
           serve`` mid-lease; exercises restart recovery (the leased job
           has no result yet, so a restarted server re-leases it and the
           recovered campaign digest matches an uninterrupted run)
========== ===============================================================

A plan is a set of per-site rules, parsed from a compact spec string::

    solver:rate=0.2,seed=7;interp:at=3;worker:at=1;journal:at=2;kill:at=25

Rule forms (per site, exactly one):

- ``at=N[+M...]`` — fire on the N-th (1-based) invocation of the site
  (multiple points joined with ``+``);
- ``every=N`` — fire on every N-th invocation;
- ``rate=P`` (with optional ``seed=S``) — fire on a pseudo-random P
  fraction of invocations.  The decision for invocation *n* is a pure
  function of ``(seed, site, n)``, so a plan replays identically across
  processes and thread schedules that preserve per-site invocation counts.

Deep layers consult the *current fault plan*, a process-wide slot that
defaults to the disabled :data:`NULL_PLAN` (same pattern as the journal
and metrics registry in :mod:`repro.obs`).  Every injected fault is
counted as ``faults.injected.<site>`` in the default metrics registry.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Union

from .errors import (
    FaultPlanError,
    ResourceLimitError,
    SearchInterrupted,
    StepBudgetExceeded,
)

__all__ = [
    "FaultRule",
    "FaultPlan",
    "NullFaultPlan",
    "NULL_PLAN",
    "SITES",
    "current_fault_plan",
    "set_fault_plan",
    "use_fault_plan",
    "request_hang",
    "consume_hang_request",
    "use_hang_request",
]

#: the injection sites wired through the engine
SITES = (
    "solver",
    "interp",
    "worker",
    "worker-proc",
    "scheduler",
    "journal",
    "checkpoint",
    "kill",
    "hang",
    "pool",
    "service",
)


class FaultRule:
    """When one site fires, as a pure function of its invocation index."""

    def __init__(
        self,
        site: str,
        at: Optional[Set[int]] = None,
        every: Optional[int] = None,
        rate: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        given = sum(x is not None for x in (at, every, rate))
        if given != 1:
            raise FaultPlanError(
                f"site {site!r} needs exactly one of at=, every=, rate="
            )
        if every is not None and every < 1:
            raise FaultPlanError(f"site {site!r}: every= must be >= 1")
        if rate is not None and not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"site {site!r}: rate= must be in [0, 1]")
        self.site = site
        self.at = at
        self.every = every
        self.rate = rate
        self.seed = seed

    def fires(self, n: int) -> bool:
        """Does the rule fire on the ``n``-th (1-based) invocation?"""
        if self.at is not None:
            return n in self.at
        if self.every is not None:
            return n % self.every == 0
        assert self.rate is not None
        # deterministic per (seed, site, n): independent of thread schedule
        return random.Random(f"{self.seed}:{self.site}:{n}").random() < self.rate

    def spec(self) -> str:
        if self.at is not None:
            return f"{self.site}:at=" + "+".join(str(n) for n in sorted(self.at))
        if self.every is not None:
            return f"{self.site}:every={self.every}"
        return f"{self.site}:rate={self.rate},seed={self.seed}"


def _fault_error(site: str) -> Exception:
    """The exception the real failure mode would raise at ``site``."""
    marker = f"injected fault at site {site!r} (fault plan)"
    if site == "solver":
        return ResourceLimitError(marker)
    if site == "interp":
        return StepBudgetExceeded(marker)
    if site in ("worker", "worker-proc", "scheduler", "pool"):
        return RuntimeError(marker)
    if site == "hang":
        # never raised in practice: the hang site wedges instead of
        # raising (see request_hang); this exists for SITES completeness
        return RuntimeError(marker)
    if site in ("journal", "checkpoint"):
        return OSError(marker)
    if site in ("kill", "service"):
        return SearchInterrupted(marker)
    raise FaultPlanError(f"unknown fault site {site!r}")


class FaultPlan:
    """A seeded set of :class:`FaultRule` objects plus per-site counters.

    Counters are lock-protected (the solver site is hit from worker
    threads) and snapshot/restorable so an interrupted search can resume
    with its fault sequence intact.
    """

    enabled = True

    def __init__(self, rules: Optional[List[FaultRule]] = None) -> None:
        self._rules: Dict[str, FaultRule] = {}
        for rule in rules or []:
            if rule.site in self._rules:
                raise FaultPlanError(f"duplicate rules for site {rule.site!r}")
            self._rules[rule.site] = rule
        self._counts: Dict[str, int] = {site: 0 for site in SITES}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``site:key=value,...;site2:...`` into a plan."""
        rules: List[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, sep, body = chunk.partition(":")
            site = site.strip()
            if not sep or not body.strip():
                raise FaultPlanError(
                    f"bad fault rule {chunk!r} (want site:key=value[,key=value])"
                )
            if site not in SITES:
                raise FaultPlanError(
                    f"unknown fault site {site!r} (known: {', '.join(SITES)})"
                )
            at: Optional[Set[int]] = None
            every: Optional[int] = None
            rate: Optional[float] = None
            seed = 0
            for piece in body.split(","):
                key, sep, value = piece.strip().partition("=")
                if not sep:
                    raise FaultPlanError(f"bad fault option {piece!r} in {chunk!r}")
                try:
                    if key == "at":
                        at = {int(v) for v in value.split("+")}
                    elif key == "every":
                        every = int(value)
                    elif key == "rate":
                        rate = float(value)
                    elif key == "seed":
                        seed = int(value)
                    else:
                        raise FaultPlanError(
                            f"unknown fault option {key!r} in {chunk!r}"
                        )
                except ValueError:
                    raise FaultPlanError(f"bad fault value {piece!r} in {chunk!r}")
            rules.append(FaultRule(site, at=at, every=every, rate=rate, seed=seed))
        return cls(rules)

    def spec(self) -> str:
        """Round-trippable spec string of the plan's rules."""
        return ";".join(r.spec() for r in self._rules.values())

    # -- firing ------------------------------------------------------------

    def should_fire(self, site: str) -> bool:
        """Count one invocation of ``site``; decide whether it fails."""
        rule = self._rules.get(site)
        with self._lock:
            self._counts[site] = self._counts.get(site, 0) + 1
            n = self._counts[site]
        if rule is None or not rule.fires(n):
            return False
        with self._lock:
            self._fired[site] = self._fired.get(site, 0) + 1
        from .obs.metrics import default_registry  # deferred: obs imports faults

        registry = default_registry()
        if registry.enabled:
            registry.counter(f"faults.injected.{site}").inc()
        return True

    def fire(self, site: str) -> None:
        """Raise the site's failure-mode exception if the rule says so."""
        if self.should_fire(site):
            raise _fault_error(site)

    # -- introspection / persistence ---------------------------------------

    @property
    def fired(self) -> Dict[str, int]:
        """How many times each site actually failed so far."""
        with self._lock:
            return dict(self._fired)

    def state(self) -> Dict[str, object]:
        """Snapshot of the per-site counters (for checkpointing)."""
        with self._lock:
            return {"counts": dict(self._counts), "fired": dict(self._fired)}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Continue an interrupted plan's counter sequence."""
        counts = state.get("counts", {})
        fired = state.get("fired", {})
        with self._lock:
            for site, n in dict(counts).items():  # type: ignore[union-attr]
                self._counts[str(site)] = int(n)
            self._fired = {str(k): int(v) for k, v in dict(fired).items()}  # type: ignore[union-attr]


class NullFaultPlan:
    """Disabled plan: nothing ever fires (the process-wide default)."""

    enabled = False
    fired: Dict[str, int] = {}

    def should_fire(self, site: str) -> bool:
        return False

    def fire(self, site: str) -> None:
        return None

    def spec(self) -> str:
        return ""

    def state(self) -> Dict[str, object]:
        return {}

    def restore_state(self, state: Dict[str, object]) -> None:
        return None


#: the process-wide disabled fault plan
NULL_PLAN = NullFaultPlan()

_current: Union[FaultPlan, NullFaultPlan] = NULL_PLAN


def current_fault_plan() -> Union[FaultPlan, NullFaultPlan]:
    """The plan injection sites consult (NULL_PLAN unless installed)."""
    return _current


def set_fault_plan(
    plan: Optional[Union[FaultPlan, NullFaultPlan]]
) -> Union[FaultPlan, NullFaultPlan]:
    """Install ``plan`` as current (None restores the null plan)."""
    global _current
    old = _current
    _current = plan if plan is not None else NULL_PLAN
    return old


@contextmanager
def use_fault_plan(
    plan: Union[FaultPlan, NullFaultPlan]
) -> Iterator[Union[FaultPlan, NullFaultPlan]]:
    """Scoped :func:`set_fault_plan`."""
    old = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(old)


# -- the hang request channel ----------------------------------------------
#
# The ``hang`` site is decided in the campaign *parent* (one consultation
# per job at dispatch time, so per-job fresh fault plans and retries can't
# re-fire it), but the wedging happens deep in the worker's search kernel.
# This process-wide flag is the channel between the two: the worker's
# run_job sets it for a condemned job, and the kernel consumes it at the
# next run boundary — mirroring how the kernel consults the current fault
# plan, without the kernel importing engine code.

_hang_requested = False


def request_hang(value: bool = True) -> None:
    """Arm (or disarm) the hang request for the current process's search."""
    global _hang_requested
    _hang_requested = bool(value)


def consume_hang_request() -> bool:
    """True exactly once after :func:`request_hang`; clears the flag."""
    global _hang_requested
    if _hang_requested:
        _hang_requested = False
        return True
    return False


@contextmanager
def use_hang_request(value: bool) -> Iterator[None]:
    """Scoped :func:`request_hang`; always disarms on exit."""
    request_hang(value)
    try:
        yield
    finally:
        request_hang(False)
