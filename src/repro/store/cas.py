"""The sharded content-addressed store shared by every artifact kind.

Layout
------
One root directory, one subdirectory per namespace, two-level fan-out
below that so no directory ever grows large::

    <root>/
        solver/
            ab/ab3f...e2.json          # flat: one entry per digest
        corpus/
            1f/1f09...77/              # grouped: one dir per group,
                9c4a...d1.json         #   one entry per digest
        crashes/
            1f/1f09...77/
                0b7e...aa.json
        quarantine/                    # corrupt entries, moved aside
        journal.jsonl                  # append-only access journal

``solver/`` is **flat**: the entry digest alone addresses the file.
``corpus/`` and ``crashes/`` are **grouped**: entries that belong
together (same program source and entry point) live in one group
directory named by the group digest, so seeding a campaign can
enumerate exactly the entries for one program without walking the
whole namespace.

Write discipline
----------------
Entries are published with a private temp file + :func:`os.replace` in
the target directory, so concurrent writers — worker processes of one
campaign, or whole machines sharing the directory over a common
filesystem — race benignly: readers only ever see absent or complete
files, and the last writer wins with an equivalent payload (an entry is
a pure function of its digest).  No locks, no coordination.  The access
journal is append-only with ``O_APPEND`` and one small line per access
(well under ``PIPE_BUF``), so concurrent appends never tear.

Invalidation and quarantine
---------------------------
Every entry embeds a ``format`` header.  An unreadable entry (truncated
write, corruption, stale format) is treated as a miss and **moved to
``quarantine/``** on first detection — never deleted outright, never
fatal — so a poisoned entry costs one failed parse ever and stays
inspectable.  ``verify`` sweeps a whole store the same way.

Eviction
--------
:meth:`ContentStore.gc` bounds the store to a byte budget by evicting
the least-recently-used entries first, using the persisted access
journal as the recency order (entries never journaled rank oldest).
Eviction is answer-preserving by construction: a store entry is a pure
function of its digest, so losing one costs a recomputation, never a
different answer.  ``gc`` also compacts the journal, folding evicted
history into a cumulative totals line so lifetime hit/store/eviction
counts survive compaction.

Metrics: ``store.<namespace>.{hits,misses,stores,evictions,quarantined}``
in the default registry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs.metrics import default_registry

__all__ = [
    "ContentStore",
    "NAMESPACES",
    "CORPUS_ENTRY_FORMAT",
    "CRASH_RECORD_FORMAT",
    "source_sha",
    "corpus_group",
    "crash_group",
    "input_digest",
]

#: the namespaces one store root carries
NAMESPACES = ("solver", "corpus", "crashes")

#: namespaces whose entries live in per-group directories
GROUPED_NAMESPACES = ("corpus", "crashes")

#: format header of corpus-namespace entries (bump to self-invalidate)
CORPUS_ENTRY_FORMAT = 1

#: format header of crash-bucket records
CRASH_RECORD_FORMAT = 1

_JOURNAL = "journal.jsonl"
_QUARANTINE = "quarantine"


# -- digest helpers ----------------------------------------------------------


def source_sha(source: str) -> str:
    """The SHA-256 identity of a program's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def corpus_group(src_sha: str, entry: str) -> str:
    """The corpus group digest for one (program source, entry point)."""
    return hashlib.sha256(f"{src_sha}//{entry}".encode("utf-8")).hexdigest()


def crash_group(src_sha: str) -> str:
    """The crash-bucket group digest for one program source."""
    return hashlib.sha256(f"crashes//{src_sha}".encode("utf-8")).hexdigest()


def input_digest(inputs: Dict[str, int]) -> str:
    """The digest naming one test-input vector (order-insensitive)."""
    canonical = repr(tuple(sorted((str(k), int(v)) for k, v in inputs.items())))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- the store ---------------------------------------------------------------


class ContentStore:
    """One sharded content-addressed store root; see the module docstring.

    Safe to share across threads, processes, and machines (over a common
    filesystem).  ``tenant`` tags this handle's journal lines so a
    service fleet sharing one store can account accesses per tenant.
    """

    def __init__(self, root: str, tenant: str = "") -> None:
        self.root = os.path.abspath(root)
        self.tenant = tenant
        os.makedirs(self.root, exist_ok=True)
        #: per-namespace in-process counters (lifetime totals live in the
        #: journal; these cover this handle only)
        self.counters: Dict[str, int] = {}

    # -- addressing --------------------------------------------------------

    def path_for(self, namespace: str, digest: str) -> str:
        """The file a flat-namespace digest is addressed to."""
        return os.path.join(
            self.root, namespace, digest[:2], digest + ".json"
        )

    def group_dir(self, namespace: str, group: str) -> str:
        """The directory a grouped-namespace group lives in."""
        return os.path.join(self.root, namespace, group[:2], group)

    def group_path(self, namespace: str, group: str, digest: str) -> str:
        """The file a grouped-namespace entry is addressed to."""
        return os.path.join(self.group_dir(namespace, group), digest + ".json")

    def _journal_path(self) -> str:
        return os.path.join(self.root, _JOURNAL)

    # -- counters ----------------------------------------------------------

    def _count(self, namespace: str, what: str, by: int = 1) -> None:
        name = f"store.{namespace}.{what}"
        self.counters[name] = self.counters.get(name, 0) + by
        registry = default_registry()
        if registry.enabled:
            registry.counter(name).inc(by)

    # -- the access journal ------------------------------------------------

    def _journal(self, op: str, namespace: str, relpath: str) -> None:
        """Append one access line (O_APPEND; atomic under PIPE_BUF)."""
        line: Dict[str, object] = {"op": op, "ns": namespace, "p": relpath}
        if self.tenant:
            line["t"] = self.tenant
        data = (json.dumps(line, sort_keys=True) + "\n").encode("utf-8")
        try:
            fd = os.open(
                self._journal_path(),
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
            try:
                os.write(fd, data)
            finally:
                os.close(fd)
        except OSError:
            pass  # accounting is best-effort, never load-bearing

    def read_journal(self) -> Tuple[Dict[str, Dict[str, int]], Dict[str, int],
                                    Dict[str, int]]:
        """Fold the journal: (per-ns op totals, per-tenant accesses,
        last-access order per relative path).

        The totals dict maps ``hits``/``stores``/``evictions`` to
        per-namespace counts; the order dict maps each journaled path to
        the line number of its *latest* access (higher = more recent).
        """
        totals: Dict[str, Dict[str, int]] = {
            "hits": {}, "misses": {}, "stores": {}, "evictions": {}
        }
        tenants: Dict[str, int] = {}
        order: Dict[str, int] = {}
        try:
            handle = open(self._journal_path(), "r", encoding="utf-8")
        except OSError:
            return totals, tenants, order
        with handle:
            for seq, raw in enumerate(handle):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # torn tail of a dying writer
                if not isinstance(line, dict):
                    continue
                op = line.get("op")
                if op == "totals":
                    # a compaction summary: fold its cumulative counts
                    for kind in totals:
                        for ns, count in dict(line.get(kind, {})).items():
                            totals[kind][str(ns)] = (
                                totals[kind].get(str(ns), 0) + int(count)
                            )
                    for tenant, count in dict(line.get("tenants", {})).items():
                        tenants[str(tenant)] = (
                            tenants.get(str(tenant), 0) + int(count)
                        )
                    continue
                ns = str(line.get("ns", "?"))
                path = str(line.get("p", ""))
                if path and op in ("hit", "store", "touch"):
                    order[path] = seq
                kind = {
                    "hit": "hits",
                    "miss": "misses",
                    "store": "stores",
                    "evict": "evictions",
                }
                bucket = kind.get(str(op))
                if bucket is None:
                    # "touch" lines (compaction recency markers) carry
                    # order only; counts live in the totals line
                    continue
                totals[bucket][ns] = totals[bucket].get(ns, 0) + 1
                tenant = str(line.get("t", "") or "")
                if tenant:
                    tenants[tenant] = tenants.get(tenant, 0) + 1
        return totals, tenants, order

    # -- load / save -------------------------------------------------------

    def load_entry(
        self,
        namespace: str,
        path: str,
        expected_format: Optional[int] = None,
    ) -> Tuple[Optional[Dict[str, object]], bool]:
        """``(payload, corrupt)`` for the entry at ``path``.

        ``payload`` is None on a miss; ``corrupt`` is True when the miss
        was an unreadable entry (now quarantined).  ``expected_format``
        (when given) is checked against the entry's ``format`` header; a
        mismatch is corruption-by-staleness and quarantines the same way.
        """
        payload: Optional[Dict[str, object]] = None
        corrupt = False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if not isinstance(loaded, dict):
                corrupt = True
            elif (
                expected_format is not None
                and loaded.get("format") != expected_format
            ):
                corrupt = True
            else:
                payload = loaded
        except FileNotFoundError:
            pass
        except (OSError, ValueError):
            corrupt = True
        if corrupt:
            self.quarantine(namespace, path)
        if payload is None:
            self._count(namespace, "misses")
            self._journal("miss", namespace, "")
            return None, corrupt
        self._count(namespace, "hits")
        self._journal("hit", namespace, os.path.relpath(path, self.root))
        return payload, False

    def load(
        self,
        namespace: str,
        path: str,
        expected_format: Optional[int] = None,
    ) -> Optional[Dict[str, object]]:
        """The entry at ``path``, or None (miss, or quarantined corrupt)."""
        payload, _corrupt = self.load_entry(
            namespace, path, expected_format=expected_format
        )
        return payload

    def save(
        self, namespace: str, path: str, payload: Dict[str, object]
    ) -> bool:
        """Publish ``payload`` at ``path`` (atomic temp + replace).

        Disk trouble downgrades to not storing — the artifact is already
        in the caller's hands.  Returns True when the entry landed.
        """
        data = json.dumps(payload, sort_keys=True)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self._count(namespace, "stores")
        self._journal("store", namespace, os.path.relpath(path, self.root))
        return True

    def quarantine(self, namespace: str, path: str) -> bool:
        """Move a corrupt entry aside (one failed parse ever, inspectable).

        A concurrent writer republishing the path first just wins: we
        move whatever is there, and the next store recreates the entry.
        """
        dest_dir = os.path.join(self.root, _QUARANTINE)
        name = f"{namespace}--{os.path.basename(path)}"
        try:
            os.makedirs(dest_dir, exist_ok=True)
            os.replace(path, os.path.join(dest_dir, name))
        except OSError:
            return False
        self._count(namespace, "quarantined")
        return True

    # -- grouped-namespace helpers ----------------------------------------

    def load_group(
        self,
        namespace: str,
        group: str,
        expected_format: Optional[int] = None,
    ) -> List[Tuple[str, Dict[str, object]]]:
        """Every readable entry of one group, sorted by digest.

        The sort makes downstream consumers (campaign seeding) a pure
        function of the store state, independent of directory order.
        """
        directory = self.group_dir(namespace, group)
        try:
            names = sorted(
                n for n in os.listdir(directory)
                if n.endswith(".json") and not n.startswith(".tmp-")
            )
        except OSError:
            return []
        out: List[Tuple[str, Dict[str, object]]] = []
        for name in names:
            payload = self.load(
                namespace,
                os.path.join(directory, name),
                expected_format=expected_format,
            )
            if payload is not None:
                out.append((name[: -len(".json")], payload))
        return out

    # -- maintenance: stats / gc / verify / export -------------------------

    def _walk_entries(self) -> Iterator[Tuple[str, str, int, float]]:
        """Yield (namespace, relpath, size, mtime) for every entry file."""
        for namespace in NAMESPACES:
            top = os.path.join(self.root, namespace)
            for dirpath, _dirnames, filenames in os.walk(top):
                for name in filenames:
                    if not name.endswith(".json") or name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        info = os.stat(path)
                    except OSError:
                        continue  # evicted/replaced underneath us
                    yield (
                        namespace,
                        os.path.relpath(path, self.root),
                        info.st_size,
                        info.st_mtime,
                    )

    def stats(self) -> Dict[str, object]:
        """Per-namespace entry counts and bytes, plus lifetime journal
        totals (hits, stores, evictions, per-tenant accesses)."""
        namespaces: Dict[str, Dict[str, int]] = {
            ns: {"entries": 0, "bytes": 0} for ns in NAMESPACES
        }
        for namespace, _relpath, size, _mtime in self._walk_entries():
            namespaces[namespace]["entries"] += 1
            namespaces[namespace]["bytes"] += size
        totals, tenants, _order = self.read_journal()
        out: Dict[str, object] = {
            "root": self.root,
            "namespaces": namespaces,
            "total_bytes": sum(n["bytes"] for n in namespaces.values()),
            "hits": totals["hits"],
            "misses": totals["misses"],
            "stores": totals["stores"],
            "evictions": totals["evictions"],
            "tenants": tenants,
        }
        hit_rates: Dict[str, float] = {}
        for ns in NAMESPACES:
            hits = totals["hits"].get(ns, 0)
            lookups = hits + totals["misses"].get(ns, 0)
            if lookups:
                hit_rates[ns] = round(hits / lookups, 4)
        out["hit_rates"] = hit_rates
        return out

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until the store fits
        ``max_bytes``; compacts the journal.  Returns per-namespace
        eviction counts (empty when nothing had to go).

        Recency comes from the journal; entries never journaled (e.g.
        imported by migration and never since read) rank oldest, ties
        break by path so two gcs over identical state agree.
        """
        totals, tenants, order = self.read_journal()
        entries = list(self._walk_entries())
        total = sum(size for _ns, _p, size, _m in entries)
        evicted: Dict[str, int] = {}
        if total > max_bytes:
            entries.sort(key=lambda e: (order.get(e[1], -1), e[1]))
            for namespace, relpath, size, _mtime in entries:
                if total <= max_bytes:
                    break
                path = os.path.join(self.root, relpath)
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evicted[namespace] = evicted.get(namespace, 0) + 1
                order.pop(relpath, None)
                self._count(namespace, "evictions")
                # prune now-empty group/fanout dirs, best effort
                parent = os.path.dirname(path)
                while parent != self.root:
                    try:
                        os.rmdir(parent)
                    except OSError:
                        break
                    parent = os.path.dirname(parent)
        for namespace, count in evicted.items():
            totals["evictions"][namespace] = (
                totals["evictions"].get(namespace, 0) + count
            )
        self._compact_journal(totals, tenants, order)
        return evicted

    def _compact_journal(
        self,
        totals: Dict[str, Dict[str, int]],
        tenants: Dict[str, int],
        order: Dict[str, int],
    ) -> None:
        """Rewrite the journal: one cumulative totals line, then one
        access line per live path in recency order (atomic replace).

        Lines appended by concurrent writers between our read and the
        replace are lost to *recency* (their counts too) — acceptable
        drift for an advisory LRU; the entries themselves are untouched.
        """
        lines = [
            json.dumps(
                {
                    "op": "totals",
                    "hits": totals["hits"],
                    "misses": totals["misses"],
                    "stores": totals["stores"],
                    "evictions": totals["evictions"],
                    "tenants": tenants,
                },
                sort_keys=True,
            )
        ]
        live = {
            relpath for _ns, relpath, _size, _mtime in self._walk_entries()
        }
        ns_of = lambda relpath: relpath.split(os.sep, 1)[0]  # noqa: E731
        for relpath, _seq in sorted(order.items(), key=lambda kv: kv[1]):
            if relpath in live:
                # "touch": preserves recency without recounting as a hit
                lines.append(
                    json.dumps(
                        {"op": "touch", "ns": ns_of(relpath), "p": relpath},
                        sort_keys=True,
                    )
                )
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-journal-", suffix=".jsonl"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + "\n")
                os.replace(tmp, self._journal_path())
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def verify(self) -> Dict[str, int]:
        """Parse every entry; quarantine the unreadable.  Returns
        ``{"checked": n, "quarantined": n}``."""
        checked = 0
        quarantined = 0
        for namespace, relpath, _size, _mtime in list(self._walk_entries()):
            path = os.path.join(self.root, relpath)
            checked += 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("format"), int
                ):
                    raise ValueError("not a store entry")
            except FileNotFoundError:
                checked -= 1  # evicted underneath us; nothing to verify
            except (OSError, ValueError):
                if self.quarantine(namespace, path):
                    quarantined += 1
        return {"checked": checked, "quarantined": quarantined}

    def export(self, namespace: str, dest: str) -> int:
        """Copy every entry of one namespace into ``dest`` (same relative
        layout, atomic per file).  Returns the number exported."""
        import shutil

        if namespace not in NAMESPACES:
            raise ValueError(
                f"unknown namespace {namespace!r} "
                f"(known: {', '.join(NAMESPACES)})"
            )
        count = 0
        for ns, relpath, _size, _mtime in self._walk_entries():
            if ns != namespace:
                continue
            src = os.path.join(self.root, relpath)
            target = os.path.join(os.path.abspath(dest), relpath)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(target), prefix=".tmp-", suffix=".json"
                )
                os.close(fd)
                shutil.copyfile(src, tmp)
                os.replace(tmp, target)
            except OSError:
                continue
            count += 1
        return count

    # -- migration ---------------------------------------------------------

    def migrate_flat_solver_cache(self) -> int:
        """One-shot import of a pre-store flat solver-cache layout.

        The old :class:`~repro.solver.diskcache.DiskCache` kept entries
        directly under its root (``<root>/ab/<digest>.json``).  When such
        directories exist beside the new namespaces, hard-link (copy on
        link failure) every entry into ``solver/`` so the warm cache is
        not thrown away.  Old files are left intact; a marker file makes
        the migration run once per store, and only the process that wins
        the marker race performs (and logs) it.
        """
        marker = os.path.join(self.root, ".migrated-flat-solver")
        candidates: List[Tuple[str, str]] = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if len(name) != 2 or name in NAMESPACES:
                continue
            try:
                int(name, 16)
            except ValueError:
                continue
            fanout = os.path.join(self.root, name)
            if not os.path.isdir(fanout):
                continue
            try:
                files = os.listdir(fanout)
            except OSError:
                continue
            for entry in files:
                if entry.endswith(".json") and not entry.startswith(".tmp-"):
                    candidates.append(
                        (os.path.join(fanout, entry), entry[: -len(".json")])
                    )
        if not candidates:
            return 0
        try:
            fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            os.close(fd)
        except FileExistsError:
            return 0  # another process (or an earlier run) migrated
        except OSError:
            return 0
        imported = 0
        for src, digest in sorted(candidates):
            dest = self.path_for("solver", digest)
            try:
                os.makedirs(os.path.dirname(dest), exist_ok=True)
                try:
                    os.link(src, dest)
                except (OSError, NotImplementedError):
                    import shutil

                    if not os.path.exists(dest):
                        shutil.copyfile(src, dest)
            except OSError:
                continue
            imported += 1
        if imported:
            self._count("solver", "migrated", imported)
            import sys

            print(
                f"[store] migrated {imported} flat solver-cache entries "
                f"into {os.path.join(self.root, 'solver')} "
                f"(originals left intact)",
                file=sys.stderr,
            )
        return imported
