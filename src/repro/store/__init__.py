"""Shared content-addressed store: solver cache, corpora, crash buckets.

One sharded on-disk store (:class:`~repro.store.cas.ContentStore`) holds
every artifact kind a fleet wants to reuse across campaigns:

- ``solver/`` — canonical solver verdicts (the disk tier of the query
  cache; :mod:`repro.solver.diskcache` is a thin adapter over it);
- ``corpus/`` — generated test inputs, grouped by program-source SHA-256
  and entry point, so a new campaign over a known program can seed from
  prior campaigns' tests (``--seed-from-store``);
- ``crashes/`` — deduplicated crash-bucket records, grouped by
  program-source SHA-256 so identical ``ExceptionClass@line`` buckets
  from *different* programs never collide.

See docs/STORAGE.md for the layout, the write discipline, eviction, and
the multi-machine sharing caveats.
"""

from .cas import (
    CORPUS_ENTRY_FORMAT,
    CRASH_RECORD_FORMAT,
    ContentStore,
    corpus_group,
    crash_group,
    input_digest,
    source_sha,
)

__all__ = [
    "ContentStore",
    "CORPUS_ENTRY_FORMAT",
    "CRASH_RECORD_FORMAT",
    "corpus_group",
    "crash_group",
    "input_digest",
    "source_sha",
]
