"""Blackbox random fuzzing baseline.

The paper's §7 punchline — "regular dynamic test generation is no better
than blackbox random testing [on the lexer] because it is not able to
drive executions through tests involving the hash function" — needs a
blackbox random tester to compare against.  This one draws input vectors
uniformly from a configurable range and tracks the same coverage and error
metrics as the directed search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import Program
from ..lang.interp import Interpreter
from ..lang.natives import NativeRegistry
from ..search.coverage import BranchCoverage
from ..search.directed import ErrorReport

__all__ = ["RandomFuzzer", "FuzzResult"]


@dataclass
class FuzzResult:
    """Outcome of a random-fuzzing session."""

    runs: int = 0
    errors: List[ErrorReport] = field(default_factory=list)
    coverage: Optional[BranchCoverage] = None
    distinct_paths: int = 0

    @property
    def found_error(self) -> bool:
        return bool(self.errors)

    def summary(self) -> str:
        cov = f"{self.coverage.ratio():.0%}" if self.coverage else "n/a"
        return (
            f"runs={self.runs} paths={self.distinct_paths} "
            f"errors={len(self.errors)} coverage={cov}"
        )


@dataclass
class RandomFuzzer:
    """Uniform random input generation over per-variable ranges.

    ``ranges`` maps input names to inclusive (lo, hi) bounds; unranged
    inputs default to ``default_range``.
    """

    program: Program
    entry: str
    natives: NativeRegistry
    ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    default_range: Tuple[int, int] = (-1000, 1000)
    seed: int = 0
    #: execution core ("bytecode" | "tree"); results are identical, the
    #: compiled backend just runs the blackbox loop faster
    exec_backend: str = "bytecode"

    def run(self, max_runs: int = 1000, stop_on_first_error: bool = False) -> FuzzResult:
        rng = random.Random(self.seed)
        interp = Interpreter(self.program, self.natives, backend=self.exec_backend)
        if self.exec_backend == "bytecode":
            from ..lang.bytecode import compile_program

            compile_program(self.program)  # compile once, not per input
        params = self.program.function(self.entry).params
        result = FuzzResult(coverage=BranchCoverage(self.program))
        seen_paths = set()
        for run_index in range(max_runs):
            inputs = {}
            for p in params:
                lo, hi = self.ranges.get(p, self.default_range)
                inputs[p] = rng.randint(lo, hi)
            run = interp.run(self.entry, inputs)
            result.runs += 1
            result.coverage.record(run.covered)
            seen_paths.add(run.path_key)
            if run.error:
                result.errors.append(
                    ErrorReport(
                        inputs=inputs,
                        message=run.error_message,
                        line=run.error_line,
                        run_index=run_index,
                    )
                )
                if stop_on_first_error:
                    break
        result.distinct_paths = len(seen_paths)
        return result
