"""Static test generation baseline (paper §1 and §9).

Static test generation analyzes the program without executing it: path
constraints are built by symbolic simulation, and — critically — unknown
functions have no concrete fallback, so the constraint solver treats them
*existentially* and may invent behaviour that the real function does not
have (§4.2's discussion of why satisfiability is the wrong quantifier).

We model it faithfully within the concolic infrastructure:

- path constraints come from higher-order symbolic execution (UF terms for
  unknown functions) — the same constraints a static simulator would build;
- test generation uses :class:`~repro.search.backends.ExistentialBackend`,
  i.e. plain satisfiability with existential UFs and **no runtime
  samples** — the defining limitation of not executing the program;
- each generated test is then validated by a real run, and the divergence
  statistics quantify the paper's claim that "static test generation is
  helpless for a program like this".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..solver.terms import TermManager
from ..symbolic.concolic import ConcolicEngine, ConcretizationMode
from ..search.backends import ExistentialBackend
from ..search.directed import DirectedSearch, SearchConfig, SearchResult

__all__ = ["StaticTestGenerator"]


@dataclass
class StaticTestGenerator:
    """Directed search driven by existential (satisfiability) generation.

    The search loop still *runs* generated tests (we must, to measure what
    they cover), but the generation step itself uses no runtime knowledge:
    no samples, no concrete fallbacks — exactly the information a static
    tool has.
    """

    program: Program
    entry: str
    natives: NativeRegistry
    config: Optional[SearchConfig] = None

    def run(self, seed_inputs: Dict[str, int]) -> SearchResult:
        tm = TermManager()
        engine = ConcolicEngine(
            self.program,
            self.natives,
            ConcretizationMode.HIGHER_ORDER,  # builds the UF path constraints
            tm,
            record_samples=False,  # a static tool observes nothing at runtime
        )
        backend = ExistentialBackend(tm)
        search = DirectedSearch(
            engine, self.entry, backend, config=self.config
        )
        return search.run(seed_inputs)
