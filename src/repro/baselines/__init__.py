"""Baseline test-generation techniques the paper compares against."""

from .random_fuzz import FuzzResult, RandomFuzzer
from .static_testgen import StaticTestGenerator

__all__ = ["FuzzResult", "RandomFuzzer", "StaticTestGenerator"]
