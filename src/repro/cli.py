"""Command-line interface: test a MiniC program from the shell.

Every subcommand is a thin wrapper over the :mod:`repro.api` facade
(:func:`repro.api.generate_tests`, :func:`repro.api.run_campaign`,
:func:`repro.api.replay`), so library and shell users hit identical code
paths.

Usage::

    python -m repro run program.minic --entry main --seed x=1,y=2
    python -m repro run program.minic --mode unsound --max-runs 50
    python -m repro run program.minic --trace events.jsonl --profile
    python -m repro run program.minic --jobs 4            # speculative planning
    python -m repro run program.minic --checkpoint ck/    # interrupt-safe search
    python -m repro run program.minic --resume ck/        # continue after a kill
    python -m repro run program.minic --fault-plan 'solver:rate=0.2,seed=7'
    python -m repro fuzz program.minic --runs 500 --range -100:100
    python -m repro modes program.minic --seed x=1,y=2   # compare engines
    python -m repro stats program.minic --seed x=1,y=2   # observability report
    python -m repro bench program.minic --jobs 2          # perf + suite digest
    python -m repro campaign paper --workers 4            # batch engine
    python -m repro campaign suite.toml --cache-dir .repro-cache

Observability flags (``run`` and ``stats``):

- ``--trace FILE`` streams a JSONL journal of session events
  (``test_generated``, ``branch_flipped``, ``solver_query``,
  ``sample_recorded``, ``divergence_detected``, …; schema in
  docs/OBSERVABILITY.md) to ``FILE``;
- ``--profile`` prints the span profile (where wall time went) and the
  metrics registry (solver query counts, conflicts, concretizations)
  after the search;
- ``stats`` is ``run`` with both always on, rendered as one report.

Native (unknown) functions available to CLI-tested programs are the hash
zoo of :mod:`repro.apps.hashes` (``hash``, ``djb2``, ``fnv1a``, ``sdbm``,
``crc32``, ``flex_hash``, ``cipher``) — the same functions the paper's
experiments use.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from . import api
from .apps.hashes import standard_registry
from .baselines import RandomFuzzer
from .errors import ReproError, SearchInterrupted
from .faults import FaultPlan, NULL_PLAN, SITES, use_fault_plan
from .lang import NativeRegistry, parse_program
from .obs import (
    MetricsRegistry,
    Observability,
    RunJournal,
    Tracer,
    set_default_registry,
)
from .search import DirectedSearch, SearchConfig
from .search.corpus import TestCorpus
from .symbolic import ConcretizationMode

__all__ = ["main", "build_parser"]


def __getattr__(name: str):
    # suite_digest lived here through PR 3; it is library functionality
    # and moved to repro.search.report with the facade work
    if name == "suite_digest":
        import warnings

        from .search.report import suite_digest

        warnings.warn(
            "repro.cli.suite_digest moved to repro.search.report.suite_digest "
            "(also exported as repro.api.suite_digest); the repro.cli alias "
            "will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        return suite_digest
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _parse_seed(text: str) -> Dict[str, int]:
    """Parse ``x=1,y=-2`` into an input dict."""
    out: Dict[str, int] = {}
    if not text:
        return out
    for piece in text.split(","):
        if "=" not in piece:
            raise ReproError(f"bad seed assignment {piece!r} (want name=int)")
        name, _, value = piece.partition("=")
        out[name.strip()] = int(value.strip())
    return out


def _parse_range(text: str):
    lo, _, hi = text.partition(":")
    return int(lo), int(hi)


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_program(source)


def _natives() -> NativeRegistry:
    return standard_registry(width=4)


def _default_entry(program, requested: Optional[str]) -> str:
    if requested:
        return requested
    if "main" in program.functions:
        return "main"
    return next(iter(program.functions))


def _seed_for(program, entry: str, seed: Dict[str, int]) -> Dict[str, int]:
    params = program.function(entry).params
    return {p: seed.get(p, 0) for p in params}


class _CliObservability:
    """The journal/registry/obs bundle requested by the CLI flags.

    When collection is on, a fresh :class:`MetricsRegistry` is installed
    as the process default (so the solver layers record into it) for the
    lifetime of the ``with`` block; the previous default is restored and
    the journal closed on exit.
    """

    def __init__(self, args, force: bool = False) -> None:
        trace = getattr(args, "trace", None)
        profile = force or getattr(args, "profile", False)
        self.journal = RunJournal(trace) if trace else None
        self.registry: Optional[MetricsRegistry] = None
        self.obs: Optional[Observability] = None
        self._old_registry: Optional[MetricsRegistry] = None
        if profile or self.journal is not None:
            self.registry = MetricsRegistry()
            self.obs = Observability(
                tracer=Tracer(journal=self.journal),
                metrics=self.registry,
                journal=self.journal,
            )

    def __enter__(self) -> "_CliObservability":
        if self.registry is not None:
            self._old_registry = set_default_registry(self.registry)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.registry is not None:
            set_default_registry(self._old_registry)
        if self.journal is not None:
            self.journal.close()


def _null_context():
    from contextlib import nullcontext

    return nullcontext()


def _print_profile_tables(obs, registry) -> None:
    print()
    print("== span profile ==")
    print(obs.tracer.render_table())
    print()
    print("== metrics ==")
    print(registry.render_table())


def _fault_plan(args):
    spec = getattr(args, "fault_plan", None)
    return FaultPlan.parse(spec) if spec else NULL_PLAN


def _query_cache(args, enabled: bool = True):
    """The query cache the flags ask for (disk-backed with --cache-dir)."""
    from .solver.cache import QueryCache

    if not enabled:
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from .solver.diskcache import DiskCache

        return QueryCache(disk=DiskCache(cache_dir))
    return QueryCache()


def _print_cache(cache) -> None:
    if cache is None:
        return
    line = (
        f"  cache: {cache.hits} hits / {cache.misses} misses "
        f"(rate {cache.hit_rate:.1%})"
    )
    disk = cache.disk
    if disk is not None:
        line += (
            f"; disk: {disk.hits} hits / {disk.misses} misses / "
            f"{disk.stores} stores"
        )
    print(line)


def _print_resilience(result) -> None:
    """Resilience summary lines: crash buckets, ladder downgrades."""
    for crash in result.crashes:
        print(f"  {crash}")
    rungs = dict(result.downgrades)
    if rungs or result.deferred_flips or result.abandoned_flips:
        parts = [f"{rung}={n}" for rung, n in sorted(rungs.items())]
        parts.append(f"deferred={result.deferred_flips}")
        parts.append(f"abandoned={result.abandoned_flips}")
        print(f"  ladder: {' '.join(parts)}")
    if result.replayed_decisions:
        print(f"  resumed: {result.replayed_decisions} decisions replayed")


def cmd_run(args) -> int:
    from .solver.cache import use_cache

    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    seed = _seed_for(program, entry, _parse_seed(args.seed))
    checkpoint_dir = args.checkpoint
    if args.resume and not checkpoint_dir:
        # resuming continues checkpointing into the same directory
        checkpoint_dir = args.resume
    cache = _query_cache(args) if getattr(args, "cache_dir", None) else None
    store = [None]

    def _capture_store(search: DirectedSearch) -> None:
        store[0] = search.store

    with _CliObservability(args) as cli_obs, use_fault_plan(_fault_plan(args)):
        with use_cache(cache) if cache is not None else _null_context():
            result = api.generate_tests(
                program,
                entry=entry,
                strategy=args.mode,
                natives=_natives(),
                seed=seed,
                obs=cli_obs.obs,
                config=SearchConfig.from_options(
                    max_runs=args.max_runs,
                    frontier=args.frontier,
                    jobs=args.jobs,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=args.checkpoint_every,
                    resume_from=args.resume,
                ),
                _search_hook=_capture_store,
            )
    print(f"[{args.mode}] {result.summary()}")
    for error in result.errors:
        print(f"  {error}")
    _print_resilience(result)
    if cache is not None:
        _print_cache(cache)
    if cli_obs.journal is not None:
        print(
            f"  trace: {cli_obs.journal.events_written} events written "
            f"to {args.trace}"
        )
    if args.corpus:
        corpus = TestCorpus()
        corpus.add_from_search(result)
        corpus.save(args.corpus)
        print(f"  corpus: {len(corpus)} tests saved to {args.corpus}")
    if args.report:
        from .search.report import render_report

        text = render_report(
            result, program, entry, mode=args.mode, store=store[0],
            title=f"Testing session: {os.path.basename(args.program)}",
        )
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"  report written to {args.report}")
    if args.profile and cli_obs.registry is not None:
        _print_profile_tables(cli_obs.obs, cli_obs.registry)
    return 1 if (args.expect_error and not result.found_error) else 0


def cmd_stats(args) -> int:
    """Run a search with full observability and render the stats report."""
    from .solver.cache import use_cache

    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    seed = _seed_for(program, entry, _parse_seed(args.seed))
    cache = _query_cache(args) if getattr(args, "cache_dir", None) else None
    with _CliObservability(args, force=True) as cli_obs, use_fault_plan(
        _fault_plan(args)
    ):
        with use_cache(cache) if cache is not None else _null_context():
            result = api.generate_tests(
                program,
                entry=entry,
                strategy=args.mode,
                natives=_natives(),
                seed=seed,
                obs=cli_obs.obs,
                config=SearchConfig.from_options(max_runs=args.max_runs),
            )
    print(f"[{args.mode}] {result.summary()}")
    _print_resilience(result)
    print(
        f"  wall time: {result.time_total:.3f}s "
        f"(executing {result.time_executing:.3f}s, "
        f"generating {result.time_generating:.3f}s)"
    )
    if cache is not None:
        _print_cache(cache)
    if cli_obs.journal is not None:
        print(
            f"  trace: {cli_obs.journal.events_written} events written "
            f"to {args.trace}"
        )
    _print_profile_tables(cli_obs.obs, cli_obs.registry)
    return 0


def cmd_bench(args) -> int:
    """Timed search with perf counters and the deterministic suite digest."""
    import json as jsonlib

    from .search.report import suite_digest
    from .solver.cache import use_cache

    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    seed = _seed_for(program, entry, _parse_seed(args.seed))
    cache = _query_cache(args, enabled=not args.no_cache)
    registry = MetricsRegistry()
    obs = Observability(tracer=Tracer(), metrics=registry)
    with use_cache(cache), use_fault_plan(_fault_plan(args)):
        result = api.generate_tests(
            program,
            entry=entry,
            strategy=args.mode,
            natives=_natives(),
            seed=seed,
            obs=obs,
            config=SearchConfig.from_options(
                max_runs=args.max_runs,
                frontier=args.frontier,
                jobs=args.jobs,
            ),
        )

    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    disk = cache.disk if cache is not None else None
    payload = {
        "program": os.path.basename(args.program),
        "mode": args.mode,
        "jobs": args.jobs,
        "cache": not args.no_cache,
        "cache_dir": getattr(args, "cache_dir", None),
        "disk_hits": disk.hits if disk is not None else 0,
        "disk_misses": disk.misses if disk is not None else 0,
        "disk_stores": disk.stores if disk is not None else 0,
        "runs": result.runs,
        "paths": result.distinct_paths,
        "errors": len(result.errors),
        "divergences": result.divergences,
        "coverage": round(result.coverage.ratio(), 4) if result.coverage else None,
        "solver_calls": result.solver_calls,
        "wall_seconds": round(result.time_total, 6),
        "generate_seconds": round(result.time_generating, 6),
        "execute_seconds": round(result.time_executing, 6),
        "smt_checks": counters.get("smt.checks", 0),
        "smt_check_seconds": round(
            histograms.get("smt.check_seconds", {}).get("total", 0.0), 6
        ),
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "cache_hit_rate": round(cache.hit_rate, 4) if cache is not None else 0.0,
        "session_pushes": counters.get("solver.session.push", 0),
        "session_pops": counters.get("solver.session.pop", 0),
        "suite_digest": suite_digest(result),
    }
    print(f"[{args.mode}] {result.summary()}")
    print(
        f"  wall={payload['wall_seconds']:.3f}s "
        f"solver={payload['smt_check_seconds']:.3f}s "
        f"({payload['smt_checks']} checks) "
        f"execute={payload['execute_seconds']:.3f}s"
    )
    print(
        f"  cache: {payload['cache_hits']} hits / "
        f"{payload['cache_misses']} misses "
        f"(rate {payload['cache_hit_rate']:.1%}); "
        f"session: {payload['session_pushes']} pushes / "
        f"{payload['session_pops']} pops"
    )
    if disk is not None:
        print(
            f"  disk cache: {disk.hits} hits / {disk.misses} misses / "
            f"{disk.stores} stores ({getattr(args, 'cache_dir', None)})"
        )
    print(f"  suite digest: {payload['suite_digest']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            jsonlib.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  bench payload written to {args.json}")
    return 0


def cmd_fuzz(args) -> int:
    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    fuzzer = RandomFuzzer(
        program, entry, _natives(),
        default_range=_parse_range(args.range),
        seed=args.rng_seed,
    )
    result = fuzzer.run(max_runs=args.runs)
    print(f"[random] {result.summary()}")
    for error in result.errors[:10]:
        print(f"  {error}")
    return 0


def cmd_modes(args) -> int:
    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    seed = _seed_for(program, entry, _parse_seed(args.seed))
    for mode in ConcretizationMode:
        search = DirectedSearch.for_mode(
            program, entry, _natives(), mode,
            SearchConfig.from_options(max_runs=args.max_runs),
        )
        result = search.run(dict(seed))
        print(f"{mode.value:14s} {result.summary()}")
        for error in result.errors:
            print(f"    {error}")
    return 0


def cmd_replay(args) -> int:
    report = api.replay(
        args.corpus, _load(args.program), entry=args.entry, natives=_natives()
    )
    print(f"[replay] {report.summary()}")
    for entry_obj, returned, error in report.mismatches[:10]:
        print(
            f"  drift: inputs {entry_obj.input_dict()} now -> "
            f"returned={returned} error={error}"
        )
    return 0 if report.all_match else 1


def cmd_campaign(args) -> int:
    """Batch engine: run a campaign of search jobs across worker processes."""
    import json as jsonlib

    def _progress(job) -> None:
        if not args.quiet:
            print(f"  [{job.key}] {job.summary()}")

    report = api.run_campaign(
        args.spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint=args.checkpoint,
        fault_plan=args.fault_plan or "",
        progress=_progress,
    )
    print(f"[campaign] {report.summary()}")
    print(f"  wall time: {report.seconds:.3f}s (workers={args.workers})")
    cache = report.cache_totals()
    if cache:
        print(
            f"  cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses; "
            f"disk: {cache.get('disk_hits', 0)} hits / "
            f"{cache.get('disk_misses', 0)} misses / "
            f"{cache.get('disk_stores', 0)} stores"
        )
    if report.crash_buckets:
        for bucket, count in sorted(report.crash_buckets.items()):
            print(f"  crash bucket [{bucket}] x{count}")
    for job in report.failed_jobs:
        print(f"  FAILED [{job.key}]: {job.error}")
    print(f"  campaign digest: {report.campaign_digest}")
    if args.corpus:
        merged = report.merged_corpus()
        with open(args.corpus, "w", encoding="utf-8") as handle:
            jsonlib.dump(merged, handle, indent=2)
        print(f"  corpus: {len(merged)} tests saved to {args.corpus}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            jsonlib.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  campaign payload written to {args.json}")
    return 1 if (args.expect_errors and report.total_errors == 0) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Higher-order test generation for MiniC programs "
            "(reproduction of Godefroid, PLDI 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="directed search with one engine")
    run.add_argument("program", help="MiniC source file")
    run.add_argument("--entry", default=None, help="entry function (default: main)")
    run.add_argument("--seed", default="", help="seed inputs, e.g. x=1,y=2")
    run.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    run.add_argument("--max-runs", type=int, default=100)
    run.add_argument(
        "--frontier", default="fifo", choices=["fifo", "coverage"]
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads planning branch flips (same suite at any value)",
    )
    run.add_argument("--corpus", default=None, help="save generated tests to JSON")
    run.add_argument("--report", default=None, help="write a markdown session report")
    run.add_argument(
        "--expect-error",
        action="store_true",
        help="exit non-zero when no error is found (for CI scripts)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream a JSONL journal of session events to FILE",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print span profile and metrics tables after the search",
    )
    run.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection, e.g. "
            "'solver:rate=0.2,seed=7;interp:at=3;kill:at=25' "
            f"(sites: {', '.join(SITES)})"
        ),
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent on-disk solver query cache shared across runs",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist search progress into DIR for crash/interrupt recovery",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=20,
        metavar="N",
        help="flush advisory checkpoint snapshots every N runs (default 20)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "resume an interrupted search from checkpoint DIR (replays its "
            "decision log; produces the same suite as an uninterrupted run)"
        ),
    )
    run.set_defaults(fn=cmd_run)

    stats = sub.add_parser(
        "stats", help="directed search with a full observability report"
    )
    stats.add_argument("program")
    stats.add_argument("--entry", default=None)
    stats.add_argument("--seed", default="")
    stats.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    stats.add_argument("--max-runs", type=int, default=100)
    stats.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also stream the JSONL journal to FILE",
    )
    stats.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection (see 'run --fault-plan')",
    )
    stats.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent on-disk solver query cache shared across runs",
    )
    stats.set_defaults(fn=cmd_stats)

    bench = sub.add_parser(
        "bench", help="timed search with perf counters and a suite digest"
    )
    bench.add_argument("program")
    bench.add_argument("--entry", default=None)
    bench.add_argument("--seed", default="")
    bench.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    bench.add_argument("--max-runs", type=int, default=100)
    bench.add_argument(
        "--frontier", default="fifo", choices=["fifo", "coverage"]
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads planning branch flips (same suite at any value)",
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the normalized query cache (cold-solver baseline)",
    )
    bench.add_argument(
        "--json", default=None, metavar="FILE", help="write the bench payload as JSON"
    )
    bench.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection (see 'run --fault-plan')",
    )
    bench.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent on-disk solver query cache shared across runs",
    )
    bench.set_defaults(fn=cmd_bench)

    campaign = sub.add_parser(
        "campaign",
        help=(
            "run a batch campaign of search jobs (programs x strategies) "
            "across worker processes"
        ),
    )
    campaign.add_argument(
        "spec",
        help=(
            "campaign spec file (.toml or .json; see docs/API.md), or "
            "'paper' for the built-in paper-example suite"
        ),
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes running jobs (campaign digest is identical "
            "at any value; default 1 = in-process)"
        ),
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persistent on-disk solver query cache shared by all workers "
            "and future campaign runs"
        ),
    )
    campaign.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "journal finished jobs into DIR; a rerun pointed at the same "
            "directory skips them"
        ),
    )
    campaign.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection (see 'run --fault-plan'); the "
            "'worker-proc' site kills a job's worker process"
        ),
    )
    campaign.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="save the merged campaign corpus (tests tagged by job) to FILE",
    )
    campaign.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the full campaign report as JSON",
    )
    campaign.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress lines",
    )
    campaign.add_argument(
        "--expect-errors",
        action="store_true",
        help="exit non-zero when the campaign finds no errors (for CI)",
    )
    campaign.set_defaults(fn=cmd_campaign)

    fuzz = sub.add_parser("fuzz", help="blackbox random fuzzing baseline")
    fuzz.add_argument("program")
    fuzz.add_argument("--entry", default=None)
    fuzz.add_argument("--runs", type=int, default=500)
    fuzz.add_argument("--range", default="-1000:1000", help="lo:hi input range")
    fuzz.add_argument("--rng-seed", type=int, default=0)
    fuzz.set_defaults(fn=cmd_fuzz)

    modes = sub.add_parser("modes", help="compare all four engines")
    modes.add_argument("program")
    modes.add_argument("--entry", default=None)
    modes.add_argument("--seed", default="")
    modes.add_argument("--max-runs", type=int, default=100)
    modes.set_defaults(fn=cmd_modes)

    replay = sub.add_parser("replay", help="replay a saved test corpus")
    replay.add_argument("program")
    replay.add_argument("corpus", help="corpus JSON file")
    replay.add_argument("--entry", default=None)
    replay.set_defaults(fn=cmd_replay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SearchInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.checkpoint_dir:
            print(
                f"resume with: repro run ... --resume {exc.checkpoint_dir}",
                file=sys.stderr,
            )
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
