"""Command-line interface: test a MiniC program from the shell.

Usage::

    python -m repro run program.minic --entry main --seed x=1,y=2
    python -m repro run program.minic --mode unsound --max-runs 50
    python -m repro fuzz program.minic --runs 500 --range -100:100
    python -m repro modes program.minic --seed x=1,y=2   # compare engines

Native (unknown) functions available to CLI-tested programs are the hash
zoo of :mod:`repro.apps.hashes` (``hash``, ``djb2``, ``fnv1a``, ``sdbm``,
``crc32``, ``flex_hash``, ``cipher``) — the same functions the paper's
experiments use.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from .apps.hashes import standard_registry
from .baselines import RandomFuzzer
from .errors import ReproError
from .lang import NativeRegistry, parse_program
from .search import DirectedSearch, SearchConfig
from .search.corpus import TestCorpus
from .symbolic import ConcretizationMode

__all__ = ["main", "build_parser"]


def _parse_seed(text: str) -> Dict[str, int]:
    """Parse ``x=1,y=-2`` into an input dict."""
    out: Dict[str, int] = {}
    if not text:
        return out
    for piece in text.split(","):
        if "=" not in piece:
            raise ReproError(f"bad seed assignment {piece!r} (want name=int)")
        name, _, value = piece.partition("=")
        out[name.strip()] = int(value.strip())
    return out


def _parse_range(text: str):
    lo, _, hi = text.partition(":")
    return int(lo), int(hi)


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_program(source)


def _natives() -> NativeRegistry:
    return standard_registry(width=4)


def _default_entry(program, requested: Optional[str]) -> str:
    if requested:
        return requested
    if "main" in program.functions:
        return "main"
    return next(iter(program.functions))


def _seed_for(program, entry: str, seed: Dict[str, int]) -> Dict[str, int]:
    params = program.function(entry).params
    return {p: seed.get(p, 0) for p in params}


def cmd_run(args) -> int:
    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    seed = _seed_for(program, entry, _parse_seed(args.seed))
    mode = ConcretizationMode(args.mode)
    search = DirectedSearch.for_mode(
        program, entry, _natives(), mode,
        SearchConfig(max_runs=args.max_runs, frontier=args.frontier),
    )
    result = search.run(seed)
    print(f"[{mode.value}] {result.summary()}")
    for error in result.errors:
        print(f"  {error}")
    if args.corpus:
        corpus = TestCorpus()
        corpus.add_from_search(result)
        corpus.save(args.corpus)
        print(f"  corpus: {len(corpus)} tests saved to {args.corpus}")
    if args.report:
        from .search.report import render_report

        text = render_report(
            result, program, entry, mode=mode.value, store=search.store,
            title=f"Testing session: {os.path.basename(args.program)}",
        )
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"  report written to {args.report}")
    return 1 if (args.expect_error and not result.found_error) else 0


def cmd_fuzz(args) -> int:
    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    fuzzer = RandomFuzzer(
        program, entry, _natives(),
        default_range=_parse_range(args.range),
        seed=args.rng_seed,
    )
    result = fuzzer.run(max_runs=args.runs)
    print(f"[random] {result.summary()}")
    for error in result.errors[:10]:
        print(f"  {error}")
    return 0


def cmd_modes(args) -> int:
    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    seed = _seed_for(program, entry, _parse_seed(args.seed))
    for mode in ConcretizationMode:
        search = DirectedSearch.for_mode(
            program, entry, _natives(), mode,
            SearchConfig(max_runs=args.max_runs),
        )
        result = search.run(dict(seed))
        print(f"{mode.value:14s} {result.summary()}")
        for error in result.errors:
            print(f"    {error}")
    return 0


def cmd_replay(args) -> int:
    program = _load(args.program)
    entry = _default_entry(program, args.entry)
    corpus = TestCorpus.load(args.corpus)
    report = corpus.replay(program, entry, _natives())
    print(f"[replay] {report.summary()}")
    for entry_obj, returned, error in report.mismatches[:10]:
        print(
            f"  drift: inputs {entry_obj.input_dict()} now -> "
            f"returned={returned} error={error}"
        )
    return 0 if report.all_match else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Higher-order test generation for MiniC programs "
            "(reproduction of Godefroid, PLDI 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="directed search with one engine")
    run.add_argument("program", help="MiniC source file")
    run.add_argument("--entry", default=None, help="entry function (default: main)")
    run.add_argument("--seed", default="", help="seed inputs, e.g. x=1,y=2")
    run.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    run.add_argument("--max-runs", type=int, default=100)
    run.add_argument(
        "--frontier", default="fifo", choices=["fifo", "coverage"]
    )
    run.add_argument("--corpus", default=None, help="save generated tests to JSON")
    run.add_argument("--report", default=None, help="write a markdown session report")
    run.add_argument(
        "--expect-error",
        action="store_true",
        help="exit non-zero when no error is found (for CI scripts)",
    )
    run.set_defaults(fn=cmd_run)

    fuzz = sub.add_parser("fuzz", help="blackbox random fuzzing baseline")
    fuzz.add_argument("program")
    fuzz.add_argument("--entry", default=None)
    fuzz.add_argument("--runs", type=int, default=500)
    fuzz.add_argument("--range", default="-1000:1000", help="lo:hi input range")
    fuzz.add_argument("--rng-seed", type=int, default=0)
    fuzz.set_defaults(fn=cmd_fuzz)

    modes = sub.add_parser("modes", help="compare all four engines")
    modes.add_argument("program")
    modes.add_argument("--entry", default=None)
    modes.add_argument("--seed", default="")
    modes.add_argument("--max-runs", type=int, default=100)
    modes.set_defaults(fn=cmd_modes)

    replay = sub.add_parser("replay", help="replay a saved test corpus")
    replay.add_argument("program")
    replay.add_argument("corpus", help="corpus JSON file")
    replay.add_argument("--entry", default=None)
    replay.set_defaults(fn=cmd_replay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
