"""Cooperative interruption: map external stop signals onto the search.

The search already has one well-tested interruption story: raise
:class:`~repro.errors.SearchInterrupted` at a run boundary, let the
session flush its checkpoint, attach the partial result, and re-raise
(see :meth:`repro.search.directed.DirectedSearch.run`).  This module
connects *out-of-band* stop requests — SIGINT/SIGTERM, a supervisor's
shutdown flag — to that same path, so ``kill -TERM`` salvages exactly
what an injected ``kill`` fault would.

Design: a process-wide request flag, not an exception from the signal
handler.  Raising from a handler can land anywhere (inside a checkpoint
write, mid solver pivot); setting a flag that the kernel polls at its
run boundary keeps interruption points identical to the injected-kill
fault site, which is what makes the exit-3 + resume contract hold.  A
*second* signal escalates to an immediate :class:`KeyboardInterrupt`
for operators who need out now.

Campaign workers never install handlers (only the parent process traps
signals); they poll the same flag, which matters for the ``--workers 1``
in-process path where parent and worker share the process.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .errors import SearchInterrupted

__all__ = [
    "trap_signals",
    "request_interrupt",
    "clear_interrupt",
    "interrupt_requested",
    "check_interrupt",
]

_lock = threading.Lock()
#: the pending stop request ("SIGINT", "SIGTERM", ...), or None
_requested: Optional[str] = None


def request_interrupt(reason: str) -> None:
    """Ask every cooperative checkpoint in this process to stop soon."""
    global _requested
    with _lock:
        if _requested is None:
            _requested = reason


def clear_interrupt() -> None:
    """Drop any pending stop request (a new command starts clean)."""
    global _requested
    with _lock:
        _requested = None


def interrupt_requested() -> Optional[str]:
    """The pending stop request's reason, or None."""
    return _requested


def check_interrupt() -> None:
    """Raise :class:`SearchInterrupted` if a stop has been requested.

    Called at the kernel's run boundary (next to the ``kill`` fault
    site), so an external signal interrupts the search exactly where an
    injected kill would — checkpoint flushed, partial result attached.
    """
    reason = _requested
    if reason is not None:
        raise SearchInterrupted(f"interrupted by {reason}")


@contextmanager
def trap_signals(
    signals: "tuple[int, ...]" = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Route SIGINT/SIGTERM into the cooperative stop flag while active.

    First signal: set the request flag (the search/campaign drains and
    exits 3 with a resume hint).  Second signal: raise
    :class:`KeyboardInterrupt` immediately.  Restores the previous
    handlers — and clears any pending request — on exit.  Outside the
    main thread (or where handlers cannot be installed) this is a no-op
    context: the flag machinery still works, only the OS wiring is
    skipped.
    """
    installed = {}

    def _handler(signum, frame):  # noqa: ANN001 - signal API
        name = signal.Signals(signum).name
        if _requested is not None:
            raise KeyboardInterrupt(name)
        request_interrupt(name)

    for signum in signals:
        try:
            installed[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):
            # not the main thread / unsupported signal: cooperative flag
            # still works, the OS hook just isn't ours to install
            continue
    try:
        yield
    finally:
        for signum, old in installed.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                continue
        clear_interrupt()
