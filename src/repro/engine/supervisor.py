"""Campaign supervision: deadlines, watchdog, bounded retry, quarantine.

:class:`~repro.engine.runner.ProcessPoolRunner` owns *where* jobs run
(in-process or a spawn-safe pool); this module owns *whether they keep
running*.  :class:`CampaignSupervisor` wraps every job dispatch in a
recovery ladder, cheapest reclaim first:

1. **deadline** — the worker reclaims itself: the search kernel checks
   its wall-clock budget at every run boundary and raises
   :class:`~repro.errors.DeadlineExceeded`, salvaging the partial suite
   (see :meth:`repro.search.kernel.SearchKernel._check_deadline`);
2. **watchdog** — the parent reclaims a non-cooperative worker: it tails
   the telemetry shards' ``run_executed`` heartbeats and declares a job
   *stalled* after ``stall_timeout`` seconds of silence, plus a
   defensive per-future timeout of ``2 × deadline + grace`` for workers
   wedged past even that;
3. **retry** — a deadline-blown/killed/stalled attempt is retried up to
   ``max_attempts`` with deterministic (no-jitter) backoff.  Every
   failed attempt is persisted to the campaign checkpoint's attempt
   ledger, so a killed-and-resumed campaign continues the count instead
   of re-firing spent attempts.  Retries are **answer-preserving**: the
   dispatch-time fault decisions (``hang``, ``pool``, ``worker-proc``)
   are consumed once per *job*, never per attempt, so a retried job
   reproduces the fault-free result and campaign digests stay
   byte-identical at every ``--workers`` value.  Only *infrastructure*
   failures spend attempts — a job whose search fails deterministically
   (``ok=False``) is a result, not a fault, and is recorded directly;
4. **quarantine** — a job that exhausts its budget is recorded
   ``quarantined`` with its last salvaged partial result and the
   campaign completes without it, surfaced in the report and in
   ``repro stats`` instead of taking the campaign down.

A broken pool (:class:`BrokenProcessPool`, a wedged worker the watchdog
had to kill) is **rebuilt** up to ``max_pool_rebuilds`` times — every
job in flight on the old pool is an innocent bystander (which job
poisoned a genuinely broken pool is unknowable) and is re-dispatched
without spending attempts; only the *injected* ``pool`` fault, decided
at dispatch time, charges its target's attempt so the retry path stays
deterministic.  Past the rebuild budget the campaign downgrades to
in-process execution.  In-process dispatches (worker-proc containment,
post-kill retries, the downgraded pool) block this supervision loop
while they run, so they are deferred until nothing is in flight —
heartbeat and timeout supervision of pooled jobs is never suspended.

Shutdown: the supervisor polls the process-wide interrupt flag
(:mod:`repro.interrupt`) between dispatches.  On SIGINT/SIGTERM it
drains in-flight jobs for ``drain_timeout`` seconds (completed results
are checkpointed), abandons the rest, and raises
:class:`~repro.errors.SearchInterrupted` so the CLI exits 3 with a
resume hint.  Partial results produced *by* the shutdown itself are
discarded, never checkpointed — resume re-runs those jobs and the
resumed digest matches an uninterrupted run.

Everything is metered (``engine.supervisor.*`` counters) and journaled
(``job_retried`` / ``job_stalled`` / ``job_quarantined`` /
``pool_rebuilt`` events to the current journal).

Besides the one-shot :meth:`CampaignSupervisor.run` batch mode, the
supervisor has a **lease-driven** mode (:meth:`CampaignSupervisor.serve`)
for the campaign service (:mod:`repro.service`): instead of a fixed job
list it pulls :class:`JobLease` objects from a scheduler one at a time as
fleet slots free up, so one worker fleet serves jobs interleaved from
many campaigns, each lease carrying its own campaign's checkpoint and
telemetry directory.  The whole recovery ladder — deadlines, watchdog
(via a :class:`~repro.obs.shipper.ShardReaderGroup` over every in-flight
campaign's shards), retry ledger, quarantine, pool rebuilds, graceful
shutdown — applies unchanged per job; un-run leases are handed back to
the scheduler on shutdown (:meth:`JobLeaseSource.released`).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..errors import ReproError, SearchInterrupted
from ..faults import FaultPlan, current_fault_plan
from ..interrupt import interrupt_requested
from ..obs.journal import current_journal
from ..obs.metrics import default_registry
from .planner import SearchJob
from .runner import JobResult, run_job

__all__ = [
    "SupervisorConfig",
    "CampaignSupervisor",
    "JobLease",
    "JobLeaseSource",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs; validated, deterministic, picklable."""

    #: attempts per job before quarantine (1 = never retry)
    max_attempts: int = 2
    #: seconds slept before attempt N: ``retry_backoff * (N - 1)``
    #: (deterministic, no jitter — jitter would make campaign wall time
    #: a random variable for nothing: jobs never thundering-herd a
    #: shared resource the way clients of one server do)
    retry_backoff: float = 0.05
    #: per-job wall-clock deadline the *parent* supervises against
    #: (mirrors the jobs' ``SearchConfig.job_deadline``); 0 disables
    job_deadline: float = 0.0
    #: slack added to the defensive parent-side future timeout
    #: (``2 * job_deadline + deadline_grace``) so a worker that is
    #: merely slow to reach its cooperative check is not shot
    deadline_grace: float = 5.0
    #: heartbeat silence (seconds) before the watchdog declares a worker
    #: stalled; 0 disables.  Needs telemetry shards to tail, and should
    #: comfortably exceed one shard flush interval (shards buffer
    #: :data:`~repro.obs.shipper.SHARD_FLUSH_EVERY` events)
    stall_timeout: float = 0.0
    #: broken/wedged pools rebuilt before downgrading to in-process
    max_pool_rebuilds: int = 1
    #: seconds granted to in-flight jobs when a shutdown is requested
    drain_timeout: float = 5.0
    #: event-loop wait quantum (watchdog resolution)
    poll_interval: float = 0.2

    def validate(self) -> "SupervisorConfig":
        if self.max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.retry_backoff < 0:
            raise ReproError(
                f"retry_backoff must be >= 0 (got {self.retry_backoff})"
            )
        if self.job_deadline < 0:
            raise ReproError(f"job_deadline must be >= 0 (got {self.job_deadline})")
        if self.stall_timeout < 0:
            raise ReproError(
                f"stall_timeout must be >= 0 (got {self.stall_timeout})"
            )
        if self.max_pool_rebuilds < 0:
            raise ReproError(
                f"max_pool_rebuilds must be >= 0 (got {self.max_pool_rebuilds})"
            )
        if self.drain_timeout < 0:
            raise ReproError(
                f"drain_timeout must be >= 0 (got {self.drain_timeout})"
            )
        if self.poll_interval <= 0:
            raise ReproError(
                f"poll_interval must be > 0 (got {self.poll_interval})"
            )
        return self


@dataclass(frozen=True)
class JobLease:
    """One job granted to the fleet, with its campaign's surroundings.

    The lease is the unit of the supervisor's serve-mode protocol: the
    scheduler decides *which* job runs next (priority, fair-share,
    quotas); the lease pins *where its side effects go* — the owning
    campaign's attempt ledger and telemetry directory — so jobs from
    different campaigns interleave on one fleet without sharing state.
    """

    job: SearchJob
    #: the owning campaign's :class:`~repro.engine.runner.CampaignCheckpoint`
    #: (results and failed attempts are journaled there), or None
    checkpoint: Optional[object] = None
    #: the owning campaign's telemetry directory (heartbeat shards), or None
    telemetry_dir: Optional[str] = None
    #: the owning campaign's tenant — tags content-store journal lines so
    #: one shared store accounts per tenant
    tenant: str = ""


class JobLeaseSource:
    """Protocol for :meth:`CampaignSupervisor.serve` schedulers.

    A duck-typed base (subclassing is optional): the supervisor only
    calls these four methods.  ``lease`` may raise
    :class:`~repro.errors.SearchInterrupted` (e.g. the injected
    ``service`` fault site) — the supervisor tears the fleet down and
    lets it propagate, exactly like an operator shutdown.
    """

    def lease(self) -> Optional[JobLease]:
        """The next job to dispatch, or None when nothing is ready."""
        raise NotImplementedError

    def outstanding(self) -> bool:
        """Is there (or could there be) more work?  False ends serving."""
        raise NotImplementedError

    def completed(self, result: JobResult) -> None:
        """One leased job finished (ok, failed, or quarantined)."""
        raise NotImplementedError

    def released(self, job: SearchJob) -> None:
        """A granted lease was abandoned un-run (shutdown); re-queue it."""
        raise NotImplementedError


class _JobState:
    """Supervision bookkeeping for one job across its attempts."""

    __slots__ = (
        "job",
        "index",
        "killed",
        "kill_counted",
        "hang",
        "pool",
        "attempts",
        "stalled",
        "inprocess",
        "result",
        "last_outcome",
        "last_error",
        "last_partial",
        "dispatched_at",
        "last_seen",
        "limit_at",
        "checkpoint",
        "telemetry",
        "tenant",
    )

    def __init__(
        self,
        job: SearchJob,
        index: int,
        killed: bool,
        hang: bool,
        pool: bool,
        spent: int,
        checkpoint=None,
        telemetry: Optional[str] = None,
        tenant: str = "",
    ) -> None:
        self.job = job
        self.index = index
        #: dispatch-time ``worker-proc`` decision (legacy containment)
        self.killed = killed
        self.kill_counted = False
        #: injected ``hang`` — armed for the first attempt only
        self.hang = hang
        #: injected ``pool`` break — first attempt only
        self.pool = pool
        #: failed attempts spent (includes prior runs via the ledger)
        self.attempts = spent
        self.stalled = False
        #: force in-process execution (worker-proc containment, or a
        #: worker death whose retry must be guaranteed to complete)
        self.inprocess = killed
        self.result: Optional[JobResult] = None
        self.last_outcome = ""
        self.last_error = ""
        self.last_partial: Optional[JobResult] = None
        self.dispatched_at = 0.0
        self.last_seen = 0.0
        self.limit_at: Optional[float] = None
        #: where this job's results/attempts are journaled (its campaign)
        self.checkpoint = checkpoint
        #: where this job's heartbeat shards land (its campaign)
        self.telemetry = telemetry
        #: per-tenant accounting tag for the shared content store
        self.tenant = tenant


class CampaignSupervisor:
    """Drive a batch of jobs to completion under the recovery ladder.

    Built per :meth:`ProcessPoolRunner.run` call; exposes its tallies
    (``retries``, ``quarantined_jobs``, ``stalled_jobs``,
    ``pool_rebuilds``) for the merger to surface.
    """

    def __init__(
        self,
        runner,
        config: Optional[SupervisorConfig] = None,
        checkpoint=None,
    ) -> None:
        self.runner = runner
        self.config = (config or SupervisorConfig()).validate()
        self.checkpoint = checkpoint
        #: retry dispatches performed (attempts beyond each job's first)
        self.retries = 0
        #: keys quarantined this run, in quarantine order
        self.quarantined_jobs: List[str] = []
        #: jobs the watchdog declared stalled at least once
        self.stalled_jobs = 0
        #: pools rebuilt after a break or a wedged worker
        self.pool_rebuilds = 0
        self._serial_only = False
        self._executor = None
        self._njobs = 0
        self._progress: Optional[Callable[[JobResult], None]] = None
        self._by_key: Dict[str, _JobState] = {}
        #: jobs settled (finished or quarantined) by a serve() session
        self._settled = 0

    # -- entry point -------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SearchJob],
        progress: Optional[Callable[[JobResult], None]] = None,
    ) -> List[JobResult]:
        """Run ``jobs`` to completion; results in the given job order.

        Raises :class:`SearchInterrupted` on a requested shutdown after
        draining; everything finished by then is checkpointed.
        """
        jobs = list(jobs)
        self._njobs = len(jobs)
        self._progress = progress
        # dispatch-time fault decisions, one consultation per job per
        # site in job order: a pure function of the plan, independent of
        # pool size and attempt count — the order (worker-proc, then
        # hang, then pool) is frozen so pre-supervisor fault plans keep
        # firing on exactly the jobs they used to
        plan = (
            FaultPlan.parse(self.runner.fault_spec)
            if self.runner.fault_spec
            else current_fault_plan()
        )
        killed = [plan.should_fire("worker-proc") for _ in jobs]
        hangs = [plan.should_fire("hang") for _ in jobs]
        pools = [plan.should_fire("pool") for _ in jobs]
        states = [
            _JobState(
                job,
                index,
                killed[index],
                hangs[index],
                pools[index],
                spent=self.checkpoint.attempts(job.key)
                if self.checkpoint is not None
                else 0,
                checkpoint=self.checkpoint,
                telemetry=self.runner.telemetry_dir,
            )
            for index, job in enumerate(jobs)
        ]
        self._by_key = {state.job.key: state for state in states}
        if self.runner.workers == 1 or len(jobs) <= 1:
            for state in states:
                self._check_shutdown()
                self._run_serial(state)
            return [s.result for s in states if s.result is not None]
        return self._run_pooled(states)

    # -- lease-driven entry point (the campaign service) -------------------

    def serve(
        self,
        source: "JobLeaseSource",
        progress: Optional[Callable[[JobResult], None]] = None,
    ) -> int:
        """Serve leases from ``source`` until it has nothing outstanding.

        The counterpart of :meth:`run` for open-ended work: jobs are
        pulled one :class:`JobLease` at a time as fleet slots free up
        (which is what makes priority preemption job-granular — a
        higher-priority campaign submitted mid-run wins the *next*
        slot, never an occupied one), each carrying its own campaign's
        checkpoint and telemetry directory.  Finished jobs are handed
        to ``source.completed`` before ``progress``; a shutdown drains
        in-flight jobs, hands un-run leases back via
        ``source.released``, and raises :class:`SearchInterrupted`.
        Returns the number of jobs settled this session.
        """

        def _on_result(result: JobResult) -> None:
            source.completed(result)
            if progress is not None:
                progress(result)

        self._progress = _on_result
        self._settled = 0
        # dispatch-time fault decisions are consulted per *lease* in
        # lease order — the serve-mode analogue of run()'s per-job
        # consultation (deterministic given a deterministic scheduler)
        plan = (
            FaultPlan.parse(self.runner.fault_spec)
            if self.runner.fault_spec
            else current_fault_plan()
        )
        # size the pool for the fleet, not for the first lease
        self._njobs = self.runner.workers
        if self.runner.workers == 1:
            self._serve_serial(source, plan)
        else:
            self._serve_pooled(source, plan)
        return self._settled

    def _lease_state(self, source, plan) -> Optional[_JobState]:
        """Pull one lease and wrap it in supervision bookkeeping."""
        lease = source.lease()
        if lease is None:
            return None
        job = lease.job
        checkpoint = lease.checkpoint
        state = _JobState(
            job,
            len(self._by_key),
            plan.should_fire("worker-proc"),
            plan.should_fire("hang"),
            plan.should_fire("pool"),
            spent=checkpoint.attempts(job.key) if checkpoint is not None else 0,
            checkpoint=checkpoint,
            telemetry=lease.telemetry_dir,
            tenant=lease.tenant,
        )
        # heartbeat routing for the watchdog; the scheduler guarantees a
        # key is leased by at most one campaign at a time, so the map is
        # unambiguous (entries are dropped again once the job settles)
        self._by_key[job.key] = state
        return state

    def _settle_hook(self, state: _JobState) -> None:
        """Bookkeeping common to finish and quarantine: the job no
        longer needs heartbeat routing, and serve sessions count it."""
        self._by_key.pop(state.job.key, None)
        self._settled += 1

    def _serve_serial(self, source, plan) -> None:
        while True:
            self._check_shutdown()
            state = self._lease_state(source, plan)
            if state is None:
                if not source.outstanding():
                    return
                time.sleep(self.config.poll_interval)
                continue
            try:
                self._run_serial(state)
            except SearchInterrupted:
                if state.result is None:
                    source.released(state.job)
                raise

    def _serve_pooled(self, source, plan) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from ..obs.shipper import ShardReaderGroup
        from .runner import _ensure_importable_by_children

        _ensure_importable_by_children()
        cfg = self.config
        queue: Deque[_JobState] = deque()  # retries only; fresh work is leased
        inflight: Dict[object, _JobState] = {}
        deferred: List[_JobState] = []
        reader = ShardReaderGroup() if cfg.stall_timeout > 0 else None
        try:
            while True:
                if interrupt_requested():
                    self._shutdown_serve(source, queue, deferred, inflight)
                # top up the fleet: internal retries first, then fresh
                # leases, until every worker slot is claimed
                while len(inflight) < self.runner.workers and (
                    not interrupt_requested()
                ):
                    if queue:
                        state = queue.popleft()
                    else:
                        state = self._lease_state(source, plan)
                        if state is None:
                            break
                    if (state.inprocess or self._serial_only) and inflight:
                        deferred.append(state)
                        continue
                    self._dispatch(state, queue, inflight)
                queue.extend(deferred)
                deferred.clear()
                if interrupt_requested():
                    self._shutdown_serve(source, queue, deferred, inflight)
                if reader is not None:
                    for state in inflight.values():
                        reader.watch(state.telemetry)
                if not inflight:
                    if queue:
                        continue
                    if not source.outstanding():
                        return
                    time.sleep(cfg.poll_interval)
                    continue
                done, _ = wait(
                    list(inflight),
                    timeout=cfg.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                pool_broke = False
                for future in done:
                    state = inflight.pop(future, None)
                    if state is None:
                        continue
                    if self._collect(state, future, queue, inflight):
                        pool_broke = True
                        break
                if inflight and not pool_broke:
                    self._watch(inflight, queue, reader)
        finally:
            self._teardown_pool()

    def _shutdown_serve(
        self,
        source,
        queue: Deque[_JobState],
        deferred: List[_JobState],
        inflight: Dict[object, _JobState],
    ) -> None:
        """Drain, hand un-run leases back to the scheduler, raise."""
        pending = list(queue) + list(deferred) + list(inflight.values())
        self._drain(inflight)
        for state in pending:
            if state.result is None:
                source.released(state.job)
        self._raise_shutdown()

    # -- serial path (workers=1: the reference execution) ------------------

    def _run_serial(self, state: _JobState) -> None:
        cfg = self.config
        while state.result is None:
            self._check_shutdown()
            if state.attempts >= cfg.max_attempts:
                self._quarantine(state)
                return
            attempt = state.attempts + 1
            if state.pool:
                # injected pool break: the attempt dies with the pool
                # (no pool exists at workers=1; the attempt is spent,
                # the rebuild path is exercised in the pooled mode)
                state.pool = False
                self._fail_attempt(
                    state, attempt, "pool", "injected pool break (fault plan)"
                )
                continue
            hang = state.hang
            state.hang = False
            if hang and state.killed:
                hang = False  # the worker "died"; its hang is moot
            if hang and not self._hang_reclaimable(state, pooled=False):
                # nothing is armed to reclaim a wedged in-process search
                # (no deadline, no watchdog): spending the attempt without
                # wedging the whole campaign is the only sane move
                self._fail_attempt(
                    state,
                    attempt,
                    "hang",
                    "injected hang with no deadline or watchdog to reclaim it",
                )
                continue
            self._count_legacy_kill(state)
            self._backoff(attempt)
            result = run_job(
                state.job,
                self.runner.cache_dir,
                self.runner.fault_spec,
                state.telemetry,
                hang=hang,
                store_dir=self.runner.store_dir,
                seed_from_store=self.runner.seed_from_store,
                store_tenant=state.tenant,
            )
            if result.interrupted and interrupt_requested():
                # the salvaged partial is a shutdown artifact, not a
                # result; resume re-runs this job from scratch
                self._raise_shutdown()
            self._settle(state, attempt, result)

    # -- pooled path -------------------------------------------------------

    def _run_pooled(self, states: List[_JobState]) -> List[JobResult]:
        from concurrent.futures import FIRST_COMPLETED, wait
        from .runner import _ensure_importable_by_children

        _ensure_importable_by_children()
        cfg = self.config
        queue: Deque[_JobState] = deque(states)
        inflight: Dict[object, _JobState] = {}
        reader = None
        if cfg.stall_timeout > 0 and self.runner.telemetry_dir:
            from ..obs.shipper import ShardReader

            reader = ShardReader(self.runner.telemetry_dir)
        deferred: List[_JobState] = []
        try:
            while True:
                # every exit from this loop passes through this check:
                # a shutdown flagged anywhere — including by an
                # in-process dispatch or a collected shutdown artifact
                # that emptied the queue — raises here instead of
                # falling out with jobs silently dropped
                if interrupt_requested():
                    self._drain(inflight)
                    self._raise_shutdown()
                if not queue and not inflight:
                    break
                while queue and not interrupt_requested():
                    state = queue.popleft()
                    if (state.inprocess or self._serial_only) and inflight:
                        # an in-process job runs synchronously right
                        # here, suspending heartbeat/timeout supervision
                        # of everything already in flight: hold it until
                        # the pool is idle
                        deferred.append(state)
                        continue
                    self._dispatch(state, queue, inflight)
                queue.extend(deferred)
                deferred.clear()
                if interrupt_requested():
                    self._drain(inflight)
                    self._raise_shutdown()
                if not inflight:
                    continue
                done, _ = wait(
                    list(inflight),
                    timeout=cfg.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                pool_broke = False
                for future in done:
                    state = inflight.pop(future, None)
                    if state is None:
                        continue  # already reassigned by a pool rebuild
                    if self._collect(state, future, queue, inflight):
                        pool_broke = True
                        break
                if inflight and not pool_broke:
                    self._watch(inflight, queue, reader)
        finally:
            self._teardown_pool()
        return [s.result for s in states if s.result is not None]

    def _dispatch(
        self,
        state: _JobState,
        queue: Deque[_JobState],
        inflight: Dict[object, _JobState],
    ) -> None:
        cfg = self.config
        if state.result is not None:
            return
        if state.attempts >= cfg.max_attempts:
            self._quarantine(state)
            return
        attempt = state.attempts + 1
        if state.pool:
            # injected pool break "while the job runs": the attempt dies
            # with the pool, jobs in flight are innocent bystanders —
            # re-dispatched on the fresh pool without spending attempts
            state.pool = False
            self._fail_attempt(
                state, attempt, "pool", "injected pool break (fault plan)"
            )
            queue.append(state)
            if self._executor is not None:
                for other in inflight.values():
                    queue.append(other)
                inflight.clear()
                self._rebuild_pool("injected pool break")
            return
        hang = state.hang
        state.hang = False
        if hang and state.killed:
            hang = False
        if hang and not self._hang_reclaimable(state, pooled=True):
            self._fail_attempt(
                state,
                attempt,
                "hang",
                "injected hang with no deadline or watchdog to reclaim it",
            )
            queue.append(state)
            return
        self._count_legacy_kill(state)
        self._backoff(attempt)
        executor = None if (state.inprocess or self._serial_only) else (
            self._ensure_executor()
        )
        if executor is None:
            # worker-proc containment / post-kill retry / downgraded
            # pool: run in the parent, which guarantees completion
            if hang and cfg.job_deadline <= 0:
                # in the parent only the deadline can reclaim a wedge
                # (the watchdog cannot kill its own process); spend the
                # attempt rather than hang the whole campaign
                self._fail_attempt(
                    state,
                    attempt,
                    "hang",
                    "injected hang with no deadline to reclaim it in-process",
                )
                queue.append(state)
                return
            result = run_job(
                state.job,
                self.runner.cache_dir,
                self.runner.fault_spec,
                state.telemetry,
                hang=hang,
                store_dir=self.runner.store_dir,
                seed_from_store=self.runner.seed_from_store,
                store_tenant=state.tenant,
            )
            if result.interrupted and interrupt_requested():
                # shutdown artifact: the dispatch loop stops on the
                # flag and the pooled loop's post-dispatch check raises
                return
            self._settle(state, attempt, result, queue)
            return
        future = executor.submit(
            run_job,
            state.job,
            self.runner.cache_dir,
            self.runner.fault_spec,
            state.telemetry,
            hang,
            self.runner.store_dir,
            self.runner.seed_from_store,
            state.tenant,
        )
        now = time.monotonic()
        state.dispatched_at = now
        state.last_seen = now
        state.limit_at = (
            now + 2.0 * cfg.job_deadline + cfg.deadline_grace
            if cfg.job_deadline > 0
            else None
        )
        inflight[future] = state

    def _collect(
        self,
        state: _JobState,
        future,
        queue: Deque[_JobState],
        inflight: Dict[object, _JobState],
    ) -> bool:
        """Fold one finished future; True when the pool broke under it."""
        from concurrent.futures.process import BrokenProcessPool

        attempt = state.attempts + 1
        try:
            result = future.result()
        except BrokenProcessPool:
            # the pool died, but *which* in-flight job poisoned it is
            # unknowable from here — this future merely surfaced first.
            # Every in-flight job (this one included) is an innocent
            # bystander: re-dispatch all of them without spending
            # attempts.  A genuinely poisonous job is still bounded,
            # because rebuilds are capped and the downgraded in-process
            # path has no pool to break
            queue.append(state)
            for other in inflight.values():
                queue.append(other)
            inflight.clear()
            self._rebuild_pool("broken process pool")
            return True
        except Exception as exc:  # noqa: BLE001 - per-future containment
            # the worker died or its result could not cross the process
            # boundary; count the kill (legacy containment metric) and
            # guarantee the retry completes by running it in-process
            self.runner._count_kill()
            state.inprocess = True
            self._fail_attempt(
                state, attempt, "killed", f"{type(exc).__name__}: {exc}"
            )
            queue.append(state)
            return False
        if result.interrupted and interrupt_requested():
            # shutdown artifact: not settled, and the pooled loop's
            # top-of-iteration check raises even when this was the last
            # in-flight future
            return False
        self._settle(state, attempt, result, queue)
        return False

    def _watch(
        self,
        inflight: Dict[object, _JobState],
        queue: Deque[_JobState],
        reader,
    ) -> None:
        """Stall + defensive-timeout pass over the in-flight jobs."""
        cfg = self.config
        now = time.monotonic()
        if reader is not None:
            for job_key, _event in reader.poll():
                seen = self._by_key.get(job_key)
                if seen is not None:
                    seen.last_seen = now
        wedged = []
        for future, state in inflight.items():
            silent_for = now - max(state.dispatched_at, state.last_seen)
            if reader is not None and silent_for > cfg.stall_timeout > 0:
                wedged.append((future, state, "stalled"))
            elif state.limit_at is not None and now > state.limit_at:
                wedged.append((future, state, "timeout"))
        if not wedged:
            return
        # a wedged worker can only be reclaimed by killing its process,
        # which takes the whole pool down: fail the culprits' attempts,
        # re-dispatch the innocents for free, rebuild
        for future, state, outcome in wedged:
            inflight.pop(future, None)
            future.cancel()
            if outcome == "stalled":
                state.stalled = True
                self.stalled_jobs += 1
                self._count("engine.supervisor.stalled")
                self._emit(
                    "job_stalled",
                    job=state.job.key,
                    silence=round(cfg.stall_timeout, 3),
                )
                detail = (
                    f"no heartbeat for {cfg.stall_timeout:g}s; worker killed"
                )
            else:
                detail = (
                    "worker overran the defensive deadline "
                    f"({2 * cfg.job_deadline + cfg.deadline_grace:g}s); killed"
                )
            self._fail_attempt(state, state.attempts + 1, outcome, detail)
            queue.append(state)
        for other in inflight.values():
            queue.append(other)
        inflight.clear()
        self._rebuild_pool("wedged worker")

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_executor(self):
        if self._serial_only:
            return None
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor
            import multiprocessing as mp

            self._executor = ProcessPoolExecutor(
                max_workers=min(self.runner.workers, max(1, self._njobs)),
                mp_context=mp.get_context("spawn"),
            )
        return self._executor

    def _teardown_pool(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        procs = list(getattr(executor, "_processes", {}).values() or [])
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - teardown is best effort
            pass
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001
                pass

    def _rebuild_pool(self, reason: str) -> None:
        self._teardown_pool()
        if self.pool_rebuilds >= self.config.max_pool_rebuilds:
            # rebuild budget exhausted: the rest of the campaign runs
            # in-process — same results, slower wall clock
            self._serial_only = True
            self._emit("pool_downgraded", reason=reason)
            return
        self.pool_rebuilds += 1
        self._count("engine.supervisor.pool_rebuilds")
        self._emit("pool_rebuilt", reason=reason, rebuilds=self.pool_rebuilds)
        # the executor itself is rebuilt lazily on the next dispatch

    # -- attempt accounting ------------------------------------------------

    def _failure(self, result: JobResult) -> Optional[str]:
        """The failure outcome of an attempt, or None when it stands.

        Only *infrastructure* failures (deadline here; killed / stalled /
        timeout at their detection sites; the injected ``pool`` fault at
        dispatch — a *real* pool break charges nobody) spend attempts.
        A job
        whose search fails deterministically (``ok=False``) is a result,
        not a fault: the execution model makes re-running it
        answer-preserving by construction, so a retry could only
        reproduce the same error — it is recorded directly, exactly as
        an unsupervised campaign would.
        """
        if result.deadline_exceeded:
            return "deadline"
        return None

    def _settle(
        self,
        state: _JobState,
        attempt: int,
        result: JobResult,
        queue: Optional[Deque[_JobState]] = None,
    ) -> None:
        outcome = self._failure(result)
        if outcome is None:
            self._finish(state, attempt, result)
            return
        if outcome == "deadline":
            self._count("engine.supervisor.deadline_exceeded")
            error = f"job deadline exceeded after {result.runs} runs"
        else:
            error = result.error
        self._fail_attempt(state, attempt, outcome, error, partial=result)
        if queue is not None:
            queue.append(state)

    def _fail_attempt(
        self,
        state: _JobState,
        attempt: int,
        outcome: str,
        error: str = "",
        partial: Optional[JobResult] = None,
    ) -> None:
        state.attempts = attempt
        state.last_outcome = outcome
        state.last_error = error
        if partial is not None:
            state.last_partial = partial
        if state.checkpoint is not None:
            state.checkpoint.record_attempt(
                state.job.key, attempt, outcome, error=error, partial=partial
            )
        if attempt < self.config.max_attempts:
            self.retries += 1
            self._count("engine.supervisor.retries")
            self._emit(
                "job_retried",
                job=state.job.key,
                attempt=attempt + 1,
                outcome=outcome,
                error=error,
            )

    def _finish(self, state: _JobState, attempt: int, result: JobResult) -> None:
        result.attempts = attempt
        result.stalled = state.stalled
        if state.killed:
            result.killed_worker = True
        state.result = result
        self._settle_hook(state)
        if self._progress is not None:
            self._progress(result)

    def _quarantine(self, state: _JobState) -> None:
        """Exhausted attempts: record the poison job and move on."""
        outcome, error = state.last_outcome, state.last_error
        partial = state.last_partial
        if partial is None and state.checkpoint is not None:
            # resume path: rebuild the salvage from the attempt ledger
            ledger = state.checkpoint.last_attempt(state.job.key)
            if ledger:
                outcome = outcome or str(ledger.get("outcome", ""))
                error = error or str(ledger.get("error", ""))
                saved = ledger.get("partial")
                if isinstance(saved, dict):
                    try:
                        partial = JobResult.from_payload(saved)
                    except (ReproError, KeyError, ValueError, TypeError):
                        partial = None
        result = partial if partial is not None else JobResult(
            key=state.job.key,
            scheduler=str(state.job.config.get("scheduler", "dfs")),
        )
        result.ok = False
        result.quarantined = True
        result.attempts = state.attempts
        result.stalled = state.stalled or result.stalled
        if state.killed:
            result.killed_worker = True
        result.error = (
            f"quarantined after {state.attempts} attempts "
            f"(last failure: {outcome or 'unknown'}"
            + (f": {error}" if error else "")
            + ")"
        )
        state.result = result
        self._settle_hook(state)
        self.quarantined_jobs.append(state.job.key)
        self._count("engine.supervisor.quarantined")
        self._emit(
            "job_quarantined",
            job=state.job.key,
            attempts=state.attempts,
            outcome=outcome,
            error=result.error,
        )
        if self._progress is not None:
            self._progress(result)

    # -- shutdown ----------------------------------------------------------

    def _check_shutdown(self) -> None:
        if interrupt_requested():
            self._raise_shutdown()

    def _raise_shutdown(self) -> None:
        reason = interrupt_requested() or "signal"
        self._count("engine.supervisor.shutdowns")
        directory = (
            self.checkpoint.directory if self.checkpoint is not None else None
        )
        message = f"campaign interrupted by {reason}"
        if directory:
            message += "; finished jobs are checkpointed"
        raise SearchInterrupted(message, checkpoint_dir=directory)

    def _drain(self, inflight: Dict[object, _JobState]) -> None:
        """Give in-flight jobs ``drain_timeout`` seconds to land."""
        if not inflight:
            return
        from concurrent.futures import FIRST_COMPLETED, wait

        deadline = time.monotonic() + self.config.drain_timeout
        while inflight and time.monotonic() < deadline:
            done, _ = wait(
                list(inflight), timeout=0.1, return_when=FIRST_COMPLETED
            )
            for future in done:
                state = inflight.pop(future, None)
                if state is None:
                    continue
                try:
                    result = future.result()
                except Exception:  # noqa: BLE001 - draining is best effort
                    continue
                if result.interrupted:
                    continue  # shutdown artifact; resume re-runs it
                if self._failure(result) is None:
                    self._finish(state, state.attempts + 1, result)
        inflight.clear()

    # -- small helpers -----------------------------------------------------

    def _hang_reclaimable(self, state: _JobState, pooled: bool) -> bool:
        """Can *anything* reclaim a wedged search for this dispatch?"""
        cfg = self.config
        if cfg.job_deadline > 0:
            return True  # the kernel reclaims itself at the deadline
        return bool(pooled and cfg.stall_timeout > 0 and state.telemetry)

    def _count_legacy_kill(self, state: _JobState) -> None:
        """The dispatch-time ``worker-proc`` kill, counted once per job."""
        if state.killed and not state.kill_counted:
            state.kill_counted = True
            self.runner._count_kill()

    def _backoff(self, attempt: int) -> None:
        if attempt > 1 and self.config.retry_backoff > 0:
            time.sleep(self.config.retry_backoff * (attempt - 1))

    def _count(self, name: str) -> None:
        registry = default_registry()
        if registry.enabled:
            registry.counter(name).inc()

    def _emit(self, kind: str, **fields: object) -> None:
        current_journal().emit(kind, **fields)
