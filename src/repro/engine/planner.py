"""Campaign planning: expand a spec into independent, picklable search jobs.

A *campaign* is a batch of directed-search sessions — programs × entry
points × strategies — meant to run unattended across a worker pool
(:mod:`repro.engine.runner`) and fold into one report
(:mod:`repro.engine.merger`).  This module owns the two declarative
pieces:

- :class:`CampaignSpec` — what to test.  Loadable from a TOML or JSON
  file (see docs/API.md for the schema), buildable from the paper-example
  registry (:meth:`CampaignSpec.paper_suite`), or constructed directly.
- :class:`SearchJob` — one fully self-contained unit of work.  A job
  carries program *source text* (not parsed ASTs), the natives-registry
  *name* (not callables), and plain-dict config — everything a spawned
  worker process needs to rebuild its own :class:`~repro.solver.terms.TermManager`,
  interpreter, and search privately.  Jobs pickle cheaply and never share
  mutable state, which is what makes the pool embarrassingly parallel and
  the campaign digest independent of ``--workers``.

Job keys (``program//entry//strategy//scheduler``) are unique within a
campaign and define the canonical (sorted) order every report uses.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ReproError
from ..lang.parser import parse_program
from ..search.scheduler import SCHEDULERS, scheduler_names
from ..symbolic.concolic import ConcretizationMode

__all__ = [
    "SearchJob",
    "CampaignSpec",
    "BatchPlanner",
    "NATIVES_NAMES",
    "resolve_spec",
]

#: natives registries a job may name (resolved in the worker process;
#: see repro.engine.runner.build_natives)
NATIVES_NAMES = ("paper", "hashes", "none")

#: accepted strategy spellings -> concretization-mode value
STRATEGY_ALIASES = {
    "hotg": ConcretizationMode.HIGHER_ORDER.value,
    "higher_order": ConcretizationMode.HIGHER_ORDER.value,
    "higher-order": ConcretizationMode.HIGHER_ORDER.value,
    "dart": ConcretizationMode.UNSOUND.value,
    "unsound": ConcretizationMode.UNSOUND.value,
    "sound": ConcretizationMode.SOUND.value,
    "delayed": ConcretizationMode.SOUND_DELAYED.value,
    "sound_delayed": ConcretizationMode.SOUND_DELAYED.value,
}


def resolve_strategy(name: str) -> str:
    """Map a strategy spelling onto its canonical mode value."""
    try:
        return STRATEGY_ALIASES[name.strip().lower()]
    except KeyError:
        raise ReproError(
            f"unknown strategy {name!r} "
            f"(known: {', '.join(sorted(set(STRATEGY_ALIASES)))})"
        )


@dataclass(frozen=True)
class SearchJob:
    """One self-contained search session, safe to ship to a worker process."""

    #: unique, sortable identity: ``program//entry//strategy//scheduler``
    key: str
    program_name: str
    #: MiniC source text (workers re-parse privately)
    source: str
    entry: str
    #: canonical ConcretizationMode value
    strategy: str
    #: natives registry name (one of NATIVES_NAMES)
    natives: str
    #: seed inputs, one per entry parameter
    seed: Dict[str, int] = field(default_factory=dict)
    #: extra SearchConfig options (validated by SearchConfig.from_options)
    config: Dict[str, object] = field(default_factory=dict)


@dataclass
class CampaignSpec:
    """Declarative description of a campaign.

    ``programs`` entries are dicts with keys:

    - ``name`` (required) — report label, unique within the spec;
    - ``source`` or ``file`` (exactly one) — MiniC text, or a path
      resolved relative to the spec file;
    - ``entry`` (optional) — entry function, default ``main`` then first;
    - ``natives`` (optional) — registry name, default ``hashes``;
    - ``seed`` (optional) — ``{param: int}`` seed inputs, default zeros.
    """

    programs: List[Dict[str, object]] = field(default_factory=list)
    strategies: List[str] = field(default_factory=lambda: ["higher_order"])
    #: frontier schedulers to run each program x strategy under (see
    #: :mod:`repro.search.scheduler`); every entry multiplies the job list
    schedulers: List[str] = field(default_factory=lambda: ["dfs"])
    max_runs: int = 60
    #: extra SearchConfig options applied to every job
    config: Dict[str, object] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        with open(path, "rb") as handle:
            raw = handle.read()
        if path.endswith(".toml"):
            try:
                import tomllib
            except ImportError as exc:  # pragma: no cover - py<3.11
                raise ReproError(
                    "TOML campaign specs need Python >= 3.11 (tomllib); "
                    "use the JSON form instead"
                ) from exc
            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except tomllib.TOMLDecodeError as exc:
                raise ReproError(f"bad TOML campaign spec {path!r}: {exc}")
        else:
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ReproError(f"bad JSON campaign spec {path!r}: {exc}")
        if not isinstance(data, dict):
            raise ReproError(f"campaign spec {path!r} must be a table/object")
        spec = cls(
            programs=list(data.get("programs", [])),
            strategies=[str(s) for s in data.get("strategies", ["higher_order"])],
            schedulers=[str(s) for s in data.get("schedulers", ["dfs"])],
            max_runs=int(data.get("max_runs", 60)),
            config=dict(data.get("config", {})),
        )
        base = os.path.dirname(os.path.abspath(path))
        for prog in spec.programs:
            file_ref = prog.get("file")
            if file_ref is not None and "source" not in prog:
                file_path = os.path.join(base, str(file_ref))
                with open(file_path, "r", encoding="utf-8") as handle:
                    prog["source"] = handle.read()
                prog.setdefault("name", os.path.splitext(
                    os.path.basename(str(file_ref)))[0])
        return spec

    @classmethod
    def paper_suite(
        cls,
        strategies: Sequence[str] = ("higher_order",),
        max_runs: int = 40,
        config: Optional[Dict[str, object]] = None,
        schedulers: Sequence[str] = ("dfs",),
    ) -> "CampaignSpec":
        """The built-in suite: every paper example, with paper natives."""
        from ..apps.paper_programs import PAPER_EXAMPLES

        programs = [
            {
                "name": example.name,
                "source": example.source,
                "entry": example.entry,
                "natives": "paper",
                "seed": dict(example.initial_inputs),
            }
            for example in PAPER_EXAMPLES.values()
        ]
        return cls(
            programs=programs,
            strategies=list(strategies),
            schedulers=list(schedulers),
            max_runs=max_runs,
            config=dict(config or {}),
        )

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`as_payload` (or any dict in the
        same shape — the campaign-spec JSON schema)."""
        if not isinstance(payload, dict):
            raise ReproError("campaign spec payload must be an object")
        return cls(
            programs=[dict(p) for p in payload.get("programs", [])],
            strategies=[
                str(s) for s in payload.get("strategies", ["higher_order"])
            ],
            schedulers=[str(s) for s in payload.get("schedulers", ["dfs"])],
            max_runs=int(payload.get("max_runs", 60)),  # type: ignore[arg-type]
            config=dict(payload.get("config", {})),
        )

    # -- serialization / derivation ----------------------------------------

    def as_payload(self) -> Dict[str, object]:
        """JSON-able form of the spec (durable submission records)."""
        return {
            "programs": [dict(p) for p in self.programs],
            "strategies": list(self.strategies),
            "schedulers": list(self.schedulers),
            "max_runs": self.max_runs,
            "config": dict(self.config),
        }

    def with_overrides(
        self,
        scheduler: Optional[str] = None,
        jobs: Optional[int] = None,
        exec_backend: Optional[str] = None,
        job_deadline: Optional[float] = None,
    ) -> "CampaignSpec":
        """A copy with CLI-style overrides folded in; never mutates self.

        ``scheduler`` replaces the scheduler list wholesale; the rest
        land in ``config`` where every job's SearchConfig picks them up
        (``job_deadline`` is also what the supervisor's parent-side
        defensive timeout keys off).
        """
        if (
            scheduler is None
            and jobs is None
            and exec_backend is None
            and job_deadline is None
        ):
            return self
        overrides: Dict[str, object] = {}
        if jobs:
            overrides["jobs"] = jobs
        if exec_backend is not None:
            overrides["exec_backend"] = exec_backend
        if job_deadline is not None:
            overrides["job_deadline"] = float(job_deadline)
        return CampaignSpec(
            programs=list(self.programs),
            strategies=list(self.strategies),
            schedulers=[scheduler] if scheduler is not None else list(
                self.schedulers
            ),
            max_runs=self.max_runs,
            config=dict(self.config, **overrides),
        )


def resolve_spec(
    spec: Union["CampaignSpec", Dict[str, object], str]
) -> CampaignSpec:
    """Resolve every accepted spec spelling into a :class:`CampaignSpec`.

    Accepts a spec object (returned as-is), a dict in the spec-file
    shape, the string ``"paper"`` for the built-in paper-example suite,
    or a path to a ``.toml``/``.json`` spec file.
    """
    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, dict):
        return CampaignSpec.from_payload(spec)
    if spec == "paper":
        return CampaignSpec.paper_suite()
    return CampaignSpec.load(str(spec))


class BatchPlanner:
    """Expand a :class:`CampaignSpec` into the sorted list of jobs.

    Expansion parses every program once (in the planning process) to
    validate it early and to resolve the default entry point and seed
    vector; the parsed AST is *not* shipped — jobs carry source text.
    """

    def expand(self, spec: CampaignSpec) -> List[SearchJob]:
        if not spec.programs:
            raise ReproError("campaign spec has no programs")
        if not spec.strategies:
            raise ReproError("campaign spec has no strategies")
        strategies = [resolve_strategy(s) for s in spec.strategies]
        if len(set(strategies)) != len(strategies):
            raise ReproError(
                f"campaign strategies {spec.strategies!r} repeat a mode"
            )
        if not spec.schedulers:
            raise ReproError("campaign spec has no schedulers")
        schedulers = [str(s) for s in spec.schedulers]
        for name in schedulers:
            if name not in SCHEDULERS:
                raise ReproError(
                    f"unknown scheduler {name!r} "
                    f"(allowed: {', '.join(scheduler_names())})"
                )
        if len(set(schedulers)) != len(schedulers):
            raise ReproError(
                f"campaign schedulers {spec.schedulers!r} repeat an entry"
            )
        jobs: List[SearchJob] = []
        seen_names: set = set()
        for prog in spec.programs:
            name = str(prog.get("name", "")) or "program"
            if name in seen_names:
                raise ReproError(f"duplicate program name {name!r} in campaign")
            seen_names.add(name)
            source = prog.get("source")
            if not isinstance(source, str) or not source.strip():
                raise ReproError(f"program {name!r} has no source/file")
            natives = str(prog.get("natives", "hashes"))
            if natives not in NATIVES_NAMES:
                raise ReproError(
                    f"program {name!r}: unknown natives registry {natives!r} "
                    f"(known: {', '.join(NATIVES_NAMES)})"
                )
            program = parse_program(source)
            entry = str(prog.get("entry") or "")
            if not entry:
                entry = "main" if "main" in program.functions else next(
                    iter(program.functions)
                )
            if entry not in program.functions:
                raise ReproError(
                    f"program {name!r} has no function {entry!r}"
                )
            given_seed = {
                str(k): int(v)  # type: ignore[call-overload]
                for k, v in dict(prog.get("seed", {})).items()
            }
            seed = {
                param: given_seed.get(param, 0)
                for param in program.function(entry).params
            }
            base_config = dict(spec.config)
            base_config.setdefault("max_runs", spec.max_runs)
            for strategy in strategies:
                for scheduler in schedulers:
                    config = dict(base_config)
                    config["scheduler"] = scheduler
                    jobs.append(
                        SearchJob(
                            key=f"{name}//{entry}//{strategy}//{scheduler}",
                            program_name=name,
                            source=source,
                            entry=entry,
                            strategy=strategy,
                            natives=natives,
                            seed=dict(seed),
                            config=config,
                        )
                    )
        jobs.sort(key=lambda job: job.key)
        return jobs
