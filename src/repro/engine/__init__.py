"""The batch engine: multi-process campaigns over many search jobs.

PR 2's frontier expander parallelized *within* one search, but Python
threads cannot beat serial wall time on CPU-bound solver work; campaigns
over many programs are embarrassingly parallel *across* searches, so this
package distributes whole search jobs over worker **processes** instead —
the standard recipe for scaling concolic testing to program suites.

Three stages, composable or driven together by
:func:`repro.api.run_campaign` / ``repro campaign``:

- :class:`~repro.engine.planner.BatchPlanner` expands a declarative
  :class:`~repro.engine.planner.CampaignSpec` (TOML/JSON file, the
  built-in paper suite, or a literal) into sorted, picklable
  :class:`~repro.engine.planner.SearchJob` units;
- :class:`~repro.engine.runner.ProcessPoolRunner` executes them on a
  spawn-safe process pool (``workers=1`` runs in-process), every
  dispatch supervised by a
  :class:`~repro.engine.supervisor.CampaignSupervisor` — per-job
  deadlines, a heartbeat watchdog, bounded deterministic retry,
  poison-job quarantine, and graceful shutdown — while worker deaths
  (injected via the ``worker-proc`` fault site or real) are contained
  by recomputing the job in the parent;
- :class:`~repro.engine.merger.ResultMerger` folds the per-job results
  into one :class:`~repro.engine.merger.CampaignReport` whose campaign
  digest is byte-identical at every worker count.

Jobs share a persistent :class:`~repro.solver.diskcache.DiskCache`
(``--cache-dir``) read/write across processes and across runs; hits are
answer-preserving, so warmth changes wall time, never suites.
"""

from .merger import CampaignReport, ResultMerger
from .planner import BatchPlanner, CampaignSpec, SearchJob
from .runner import CampaignCheckpoint, JobResult, ProcessPoolRunner, run_job
from .supervisor import CampaignSupervisor, SupervisorConfig

__all__ = [
    "BatchPlanner",
    "CampaignCheckpoint",
    "CampaignReport",
    "CampaignSpec",
    "CampaignSupervisor",
    "JobResult",
    "ProcessPoolRunner",
    "ResultMerger",
    "SearchJob",
    "SupervisorConfig",
    "run_job",
]
