"""Campaign result merging: fold per-job results into one report.

The merge is **order-insensitive by construction**: whatever order the
pool finished jobs in, :class:`ResultMerger` sorts them by job key before
folding, so the merged corpus, crash buckets, ladder stats, aggregated
metrics, and above all the **campaign digest** are byte-identical at any
``--workers`` value — the same determinism discipline PR 2 established
for ``--jobs`` and PR 3 for checkpoint/resume, one level up.

The campaign digest is a SHA-256 over ``(key, ok, suite_digest | error)``
per job in sorted-key order.  It deliberately excludes timings, cache
counters, worker pids, and containment flags (a recomputed job after a
worker kill yields the same suite, so the kill is invisible here).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .runner import JobResult

__all__ = ["CampaignReport", "ResultMerger"]


@dataclass
class CampaignReport:
    """Everything a campaign produced, in canonical (sorted-key) order."""

    jobs: List[JobResult] = field(default_factory=list)
    campaign_digest: str = ""
    #: wall-clock seconds for the whole campaign (parent-side)
    seconds: float = 0.0
    #: worker-process kills contained during execution
    killed_workers: int = 0
    #: jobs served from a campaign checkpoint instead of re-run
    resumed_jobs: int = 0
    #: supervisor retry dispatches (attempts beyond each job's first)
    retried_jobs: int = 0
    #: keys of jobs quarantined after exhausting their attempt budget
    quarantined_jobs: List[str] = field(default_factory=list)
    #: jobs the heartbeat watchdog declared stalled at least once
    stalled_jobs: int = 0
    #: worker pools rebuilt after a break or a wedged worker
    pool_rebuilds: int = 0
    #: crash buckets aggregated across jobs: bucket -> total count
    crash_buckets: Dict[str, int] = field(default_factory=dict)
    #: degradation-ladder downgrades aggregated across jobs
    downgrades: Dict[str, int] = field(default_factory=dict)
    #: selected counters aggregated across job metric snapshots
    counters: Dict[str, int] = field(default_factory=dict)
    #: total seconds inside SMT checks, summed over jobs
    smt_check_seconds: float = 0.0
    #: telemetry directory the campaign shipped journal shards to ("" = off)
    telemetry_dir: str = ""
    #: events in the merged campaign journal (0 when telemetry is off)
    journal_events: int = 0

    # -- derived totals ----------------------------------------------------

    @property
    def ok_jobs(self) -> List[JobResult]:
        return [j for j in self.jobs if j.ok]

    @property
    def failed_jobs(self) -> List[JobResult]:
        return [j for j in self.jobs if not j.ok]

    @property
    def total_runs(self) -> int:
        return sum(j.runs for j in self.jobs)

    @property
    def total_paths(self) -> int:
        return sum(j.paths for j in self.jobs)

    @property
    def total_errors(self) -> int:
        return sum(len(j.errors) for j in self.jobs)

    @property
    def total_divergences(self) -> int:
        return sum(j.divergences for j in self.jobs)

    @property
    def total_solver_calls(self) -> int:
        return sum(j.solver_calls for j in self.jobs)

    @property
    def total_tests(self) -> int:
        return sum(len(j.corpus) for j in self.jobs)

    def cache_totals(self) -> Dict[str, int]:
        """Query-cache counters summed across jobs."""
        totals: Dict[str, int] = {}
        for job in self.jobs:
            for name, value in job.cache.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def disk_cache_stats(self) -> Dict[str, object]:
        """Shared disk-cache rollup: hits/misses/stores/corrupt-skips and
        the derived hit rate (None before the first lookup)."""
        totals = self.cache_totals()
        hits = totals.get("disk_hits", 0)
        misses = totals.get("disk_misses", 0)
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "stores": totals.get("disk_stores", 0),
            "corrupt_skipped": totals.get("disk_skipped", 0),
            "corrupt_removed": totals.get("disk_corrupt_removed", 0),
            "hit_rate": round(hits / lookups, 4) if lookups else None,
        }

    def merged_corpus(self) -> List[Dict[str, object]]:
        """Every generated test, tagged with its job key, in key order."""
        merged: List[Dict[str, object]] = []
        for job in self.jobs:
            for entry in job.corpus:
                tagged = dict(entry)
                tagged["job"] = job.key
                merged.append(tagged)
        return merged

    def summary(self) -> str:
        parts = [
            f"jobs={len(self.jobs)}",
            f"runs={self.total_runs}",
            f"paths={self.total_paths}",
            f"errors={self.total_errors}",
            f"divergences={self.total_divergences}",
            f"tests={self.total_tests}",
        ]
        if self.failed_jobs:
            parts.append(f"failed={len(self.failed_jobs)}")
        if self.crash_buckets:
            parts.append(f"crash_buckets={len(self.crash_buckets)}")
        if self.killed_workers:
            parts.append(f"killed_workers={self.killed_workers}")
        if self.resumed_jobs:
            parts.append(f"resumed={self.resumed_jobs}")
        if self.retried_jobs:
            parts.append(f"retried={self.retried_jobs}")
        if self.stalled_jobs:
            parts.append(f"stalled={self.stalled_jobs}")
        if self.pool_rebuilds:
            parts.append(f"pool_rebuilds={self.pool_rebuilds}")
        if self.quarantined_jobs:
            parts.append(f"quarantined={len(self.quarantined_jobs)}")
        return " ".join(parts)

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form of the whole report (campaign --json)."""
        cache = self.cache_totals()
        return {
            "campaign_digest": self.campaign_digest,
            "jobs": [j.to_payload() for j in self.jobs],
            "totals": {
                "jobs": len(self.jobs),
                "failed_jobs": len(self.failed_jobs),
                "runs": self.total_runs,
                "paths": self.total_paths,
                "errors": self.total_errors,
                "divergences": self.total_divergences,
                "solver_calls": self.total_solver_calls,
                "tests": self.total_tests,
                "killed_workers": self.killed_workers,
                "resumed_jobs": self.resumed_jobs,
                "retried_jobs": self.retried_jobs,
                "quarantined_jobs": list(self.quarantined_jobs),
                "stalled_jobs": self.stalled_jobs,
                "pool_rebuilds": self.pool_rebuilds,
            },
            "crash_buckets": dict(self.crash_buckets),
            "downgrades": dict(self.downgrades),
            "cache": cache,
            "disk_cache": self.disk_cache_stats(),
            "counters": dict(self.counters),
            "smt_check_seconds": round(self.smt_check_seconds, 6),
            "seconds": round(self.seconds, 6),
            "telemetry_dir": self.telemetry_dir,
            "journal_events": self.journal_events,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CampaignReport":
        """Rebuild a report from :meth:`to_payload` (service ``result.json``).

        The round-trip preserves everything a client can observe —
        jobs, digest, totals, buckets — so a report fetched by ticket
        is interchangeable with the one the campaign returned live.
        """
        totals = payload.get("totals", {})
        if not isinstance(totals, dict):
            totals = {}
        return cls(
            jobs=[
                JobResult.from_payload(dict(j))
                for j in payload.get("jobs", [])  # type: ignore[union-attr]
            ],
            campaign_digest=str(payload.get("campaign_digest", "")),
            seconds=float(payload.get("seconds", 0.0)),  # type: ignore[arg-type]
            killed_workers=int(totals.get("killed_workers", 0)),
            resumed_jobs=int(totals.get("resumed_jobs", 0)),
            retried_jobs=int(totals.get("retried_jobs", 0)),
            quarantined_jobs=[
                str(k) for k in totals.get("quarantined_jobs", [])
            ],
            stalled_jobs=int(totals.get("stalled_jobs", 0)),
            pool_rebuilds=int(totals.get("pool_rebuilds", 0)),
            crash_buckets={
                str(k): int(v)  # type: ignore[call-overload]
                for k, v in dict(payload.get("crash_buckets", {})).items()
            },
            downgrades={
                str(k): int(v)  # type: ignore[call-overload]
                for k, v in dict(payload.get("downgrades", {})).items()
            },
            counters={
                str(k): int(v)  # type: ignore[call-overload]
                for k, v in dict(payload.get("counters", {})).items()
            },
            smt_check_seconds=float(
                payload.get("smt_check_seconds", 0.0)  # type: ignore[arg-type]
            ),
            telemetry_dir=str(payload.get("telemetry_dir", "")),
            journal_events=int(payload.get("journal_events", 0)),  # type: ignore[call-overload]
        )


class ResultMerger:
    """Fold job results into a :class:`CampaignReport` deterministically."""

    #: counters lifted from job metric snapshots into the merged view
    AGGREGATED_COUNTERS = (
        "smt.checks",
        "smt.sat",
        "smt.unsat",
        "solver.cache.hits",
        "solver.cache.misses",
        "solver.diskcache.hits",
        "solver.diskcache.misses",
        "solver.diskcache.stores",
        "solver.diskcache.skipped",
        "search.runs",
        "search.divergences",
        "search.errors",
    )

    #: counter prefixes folded wholesale (per-scheduler queue/selection
    #: counters and per-namespace content-store counters: names depend on
    #: which schedulers/namespaces the campaign touched)
    AGGREGATED_PREFIXES = ("search.scheduler.", "store.")

    def merge(
        self,
        results: Sequence[JobResult],
        seconds: float = 0.0,
        killed_workers: int = 0,
        resumed_jobs: int = 0,
        retried_jobs: int = 0,
        quarantined_jobs: Optional[Sequence[str]] = None,
        stalled_jobs: int = 0,
        pool_rebuilds: int = 0,
    ) -> CampaignReport:
        ordered = sorted(results, key=lambda r: r.key)
        keys = [r.key for r in ordered]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate job keys in campaign: {dupes}")
        report = CampaignReport(
            jobs=list(ordered),
            seconds=seconds,
            killed_workers=killed_workers,
            resumed_jobs=resumed_jobs,
            retried_jobs=retried_jobs,
            quarantined_jobs=sorted(quarantined_jobs or []),
            stalled_jobs=stalled_jobs,
            pool_rebuilds=pool_rebuilds,
        )
        digest = hashlib.sha256()
        for job in ordered:
            digest.update(
                repr(
                    (job.key, job.ok, job.suite_digest if job.ok else job.error)
                ).encode("utf-8")
            )
            for crash in job.crashes:
                bucket = str(crash.get("bucket", "?"))
                # campaign-level buckets are qualified by the program's
                # source identity: two programs raising the same
                # ``ExceptionClass@line`` must not collapse into one
                # bucket.  Per-job buckets (which feed suite digests)
                # stay unqualified.  Display-side only — the campaign
                # digest never folds campaign-level buckets.
                if job.source_sha:
                    bucket = f"{job.source_sha[:12]}:{bucket}"
                report.crash_buckets[bucket] = report.crash_buckets.get(
                    bucket, 0
                ) + int(crash.get("count", 1))  # type: ignore[call-overload]
            for rung, count in job.downgrades.items():
                report.downgrades[rung] = report.downgrades.get(rung, 0) + count
            counters = job.metrics.get("counters", {})
            if isinstance(counters, dict):
                for name in self.AGGREGATED_COUNTERS:
                    value = counters.get(name)
                    if value:
                        report.counters[name] = report.counters.get(
                            name, 0
                        ) + int(value)  # type: ignore[call-overload]
                for name, value in counters.items():
                    if value and any(
                        str(name).startswith(p) for p in self.AGGREGATED_PREFIXES
                    ):
                        report.counters[str(name)] = report.counters.get(
                            str(name), 0
                        ) + int(value)  # type: ignore[call-overload]
            histograms = job.metrics.get("histograms", {})
            if isinstance(histograms, dict):
                check = histograms.get("smt.check_seconds", {})
                if isinstance(check, dict):
                    report.smt_check_seconds += float(check.get("total", 0.0))
        report.campaign_digest = digest.hexdigest()
        return report
