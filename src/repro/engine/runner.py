"""Multi-process campaign execution: the worker pool and its job protocol.

The unit of distribution is a :class:`~repro.engine.planner.SearchJob` —
source text plus plain-data options — and the unit of result is a
:class:`JobResult` — a picklable, JSON-able summary (counts, per-job suite
digest, corpus entries, metrics snapshot).  Nothing heavier ever crosses a
process boundary: workers rebuild :class:`~repro.solver.terms.TermManager`,
interpreter, and search state privately from the job, which is what makes
the pool **spawn-safe** (no reliance on fork sharing module state) and the
output independent of worker count.

Execution model
---------------
:class:`ProcessPoolRunner` with ``workers=1`` runs jobs in-process
(no pool, no pickling) — the reference execution every other
configuration must reproduce.  With ``workers>1`` it keeps a spawn-context
:class:`~concurrent.futures.ProcessPoolExecutor`; each worker handles many
jobs, installing a *fresh* per-job fault plan, metrics registry, and query
cache so a job's behaviour is a pure function of the job (plus the shared
on-disk cache, whose hits are answer-preserving by construction).  Results
are merged in sorted job-key order regardless of completion order, so the
campaign digest is byte-identical at every ``--workers`` value.

Failure containment mirrors PR 3's worker-thread story one level up,
and every dispatch runs under the recovery ladder of
:class:`~repro.engine.supervisor.CampaignSupervisor` (deadlines →
heartbeat watchdog → bounded retry → quarantine):

- the ``worker-proc`` fault site fires in the parent at dispatch time,
  standing in for a worker process killed mid-job; the job is recomputed
  in-process and the kill counted (``engine.worker_kills``);
- a genuinely broken pool (:class:`BrokenProcessPool`, a wedged worker
  the watchdog had to kill) is rebuilt once before the remaining jobs
  downgrade to in-process execution;
- a job whose *search* blows up returns ``ok=False`` with the error
  message — one bad program never takes down the campaign.

Campaign checkpointing (:class:`CampaignCheckpoint`) journals finished
jobs and failed supervisor attempts to ``<dir>/jobs.jsonl``; a rerun
pointed at the same directory skips finished jobs, feeds the saved
results straight to the merger, and never re-fires spent attempts.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..errors import DeadlineExceeded, ReproError, SearchInterrupted
from ..faults import (
    FaultPlan,
    NULL_PLAN,
    use_fault_plan,
    use_hang_request,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .supervisor import SupervisorConfig
from ..lang.natives import NativeRegistry
from ..lang.parser import parse_program
from ..obs import Observability
from ..obs.metrics import MetricsRegistry, default_registry, use_registry
from ..obs.tracer import Tracer
from ..search.corpus import TestCorpus
from ..search.report import suite_digest
from ..solver.cache import QueryCache, use_cache
from ..symbolic.concolic import ConcretizationMode
from .planner import SearchJob

__all__ = [
    "JobResult",
    "ProcessPoolRunner",
    "CampaignCheckpoint",
    "build_natives",
    "run_job",
]

#: JobResult payload schema version (checkpointed campaigns self-invalidate)
#: v4: added ``source_sha`` (program-source identity for store grouping
#: and collision-free campaign-level crash buckets)
JOB_RESULT_FORMAT = 4

#: traceback frames kept in :attr:`JobResult.error_trace` for diagnosis
ERROR_TRACE_FRAMES = 5


def build_natives(name: str) -> NativeRegistry:
    """Resolve a job's natives-registry name inside the worker process."""
    if name == "paper":
        from ..apps.paper_programs import make_paper_natives

        return make_paper_natives()
    if name == "hashes":
        from ..apps.hashes import standard_registry

        return standard_registry(width=4)
    if name == "none":
        return NativeRegistry()
    raise ReproError(f"unknown natives registry {name!r}")


@dataclass
class JobResult:
    """Picklable summary of one finished (or failed) search job."""

    key: str
    ok: bool = True
    #: frontier scheduler the job's search ran under
    scheduler: str = ""
    #: error message of a job that failed outright (ok=False)
    error: str = ""
    #: truncated traceback tail of a failed job (diagnostics only: never
    #: part of the campaign digest, which folds ``error`` — tracebacks
    #: carry absolute paths that would break digest portability)
    error_trace: str = ""
    #: the search ended on a (contained) SearchInterrupted
    interrupted: bool = False
    #: the job ran past its wall-clock deadline (partial result salvaged;
    #: under a supervisor this attempt failed and the job is retried)
    deadline_exceeded: bool = False
    #: the job's worker process was killed and the job recomputed in-process
    killed_worker: bool = False
    #: attempts the supervisor spent on this job (1 = first try succeeded)
    attempts: int = 1
    #: the job exhausted its attempt budget; this is its last salvaged
    #: partial result, recorded so the campaign completes without it
    quarantined: bool = False
    #: the supervisor's watchdog declared this job's worker stalled at
    #: least once (heartbeat silence) before the job finished
    stalled: bool = False
    worker_pid: int = 0
    #: SHA-256 of the job's program source (the store's grouping identity;
    #: also what keeps campaign-level crash buckets collision-free across
    #: programs sharing an ``ExceptionClass@line``)
    source_sha: str = ""
    runs: int = 0
    paths: int = 0
    errors: List[str] = field(default_factory=list)
    crashes: List[Dict[str, object]] = field(default_factory=list)
    downgrades: Dict[str, int] = field(default_factory=dict)
    deferred_flips: int = 0
    abandoned_flips: int = 0
    divergences: int = 0
    solver_calls: int = 0
    coverage: Optional[float] = None
    suite_digest: str = ""
    #: generated tests (TestCorpus entry dicts)
    corpus: List[Dict[str, object]] = field(default_factory=list)
    seconds: float = 0.0
    generate_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: in-memory + disk query-cache counters for this job
    cache: Dict[str, int] = field(default_factory=dict)
    #: metrics registry snapshot (counters/gauges/histograms)
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def error_count(self) -> int:
        return len(self.errors)

    def to_payload(self) -> Dict[str, object]:
        """JSON-able dict (campaign --json, checkpoint journal)."""
        return {
            "format": JOB_RESULT_FORMAT,
            "key": self.key,
            "ok": self.ok,
            "scheduler": self.scheduler,
            "error": self.error,
            "error_trace": self.error_trace,
            "interrupted": self.interrupted,
            "deadline_exceeded": self.deadline_exceeded,
            "killed_worker": self.killed_worker,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "stalled": self.stalled,
            "worker_pid": self.worker_pid,
            "source_sha": self.source_sha,
            "runs": self.runs,
            "paths": self.paths,
            "errors": list(self.errors),
            "crashes": [dict(c) for c in self.crashes],
            "downgrades": dict(self.downgrades),
            "deferred_flips": self.deferred_flips,
            "abandoned_flips": self.abandoned_flips,
            "divergences": self.divergences,
            "solver_calls": self.solver_calls,
            "coverage": self.coverage,
            "suite_digest": self.suite_digest,
            "corpus": [dict(e) for e in self.corpus],
            "seconds": round(self.seconds, 6),
            "generate_seconds": round(self.generate_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "cache": dict(self.cache),
            "metrics": self.metrics,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobResult":
        if payload.get("format") != JOB_RESULT_FORMAT:
            raise ReproError(
                f"job result format {payload.get('format')!r} "
                f"!= {JOB_RESULT_FORMAT}"
            )
        return cls(
            key=str(payload["key"]),
            ok=bool(payload["ok"]),
            scheduler=str(payload.get("scheduler", "")),
            error=str(payload.get("error", "")),
            error_trace=str(payload.get("error_trace", "")),
            interrupted=bool(payload.get("interrupted", False)),
            deadline_exceeded=bool(payload.get("deadline_exceeded", False)),
            killed_worker=bool(payload.get("killed_worker", False)),
            attempts=int(payload.get("attempts", 1)),
            quarantined=bool(payload.get("quarantined", False)),
            stalled=bool(payload.get("stalled", False)),
            worker_pid=int(payload.get("worker_pid", 0)),
            source_sha=str(payload.get("source_sha", "")),
            runs=int(payload.get("runs", 0)),
            paths=int(payload.get("paths", 0)),
            errors=[str(e) for e in payload.get("errors", [])],
            crashes=[dict(c) for c in payload.get("crashes", [])],
            downgrades={
                str(k): int(v)
                for k, v in dict(payload.get("downgrades", {})).items()
            },
            deferred_flips=int(payload.get("deferred_flips", 0)),
            abandoned_flips=int(payload.get("abandoned_flips", 0)),
            divergences=int(payload.get("divergences", 0)),
            solver_calls=int(payload.get("solver_calls", 0)),
            coverage=payload.get("coverage"),  # type: ignore[arg-type]
            suite_digest=str(payload.get("suite_digest", "")),
            corpus=[dict(e) for e in payload.get("corpus", [])],
            seconds=float(payload.get("seconds", 0.0)),
            generate_seconds=float(payload.get("generate_seconds", 0.0)),
            execute_seconds=float(payload.get("execute_seconds", 0.0)),
            cache={
                str(k): int(v) for k, v in dict(payload.get("cache", {})).items()
            },
            metrics=dict(payload.get("metrics", {})),
        )

    def summary(self) -> str:
        if not self.ok:
            label = "QUARANTINED" if self.quarantined else "FAILED"
            return f"{label}: {self.error}"
        extra = ""
        if self.crashes:
            extra += f" crashes={len(self.crashes)}"
        if self.interrupted:
            extra += " interrupted"
        if self.killed_worker:
            extra += " (worker killed; recomputed)"
        if self.attempts > 1:
            extra += f" (attempt {self.attempts})"
        cov = f"{self.coverage:.0%}" if self.coverage is not None else "n/a"
        return (
            f"runs={self.runs} paths={self.paths} errors={len(self.errors)} "
            f"divergences={self.divergences} coverage={cov}" + extra
        )


def _trace_tail(exc: BaseException) -> str:
    """Last :data:`ERROR_TRACE_FRAMES` traceback frames of ``exc``.

    Enough to diagnose a quarantined job straight from ``jobs.jsonl``
    without re-running it; elided frames are marked so a deep recursion
    doesn't balloon the checkpoint.
    """
    import traceback

    frames = traceback.format_tb(exc.__traceback__)
    tail = frames[-ERROR_TRACE_FRAMES:]
    head = (
        [f"  ... {len(frames) - ERROR_TRACE_FRAMES} frames elided ...\n"]
        if len(frames) > ERROR_TRACE_FRAMES
        else []
    )
    return "".join(head + tail + [f"{type(exc).__name__}: {exc}"]).rstrip()


def _job_cache(cache_dir: Optional[str]) -> QueryCache:
    """A fresh per-job memory cache, disk-backed when a directory is given."""
    if cache_dir:
        from ..solver.diskcache import DiskCache

        return QueryCache(disk=DiskCache(cache_dir))
    return QueryCache()


def _open_telemetry_shard(
    telemetry_dir: str, job_key: str, registry: MetricsRegistry
):
    """Open the job's journal shard; a failed open disables telemetry for
    this job (counted once), never the job itself."""
    from ..obs.shipper import open_shard

    try:
        return open_shard(telemetry_dir, job_key, os.getpid())
    except OSError:
        if registry.enabled:
            registry.counter("obs.shipper.open_errors").inc()
        return None


def _seal_shard(shard, out: JobResult) -> None:
    """Emit the shard's terminal ``job_finished`` event and close it."""
    if shard is None:
        return
    shard.emit(
        "job_finished",
        ok=out.ok,
        error=out.error,
        runs=out.runs,
        paths=out.paths,
        errors=len(out.errors),
        divergences=out.divergences,
        coverage=out.coverage,
        seconds=round(out.seconds, 6),
        suite_digest=out.suite_digest,
    )
    shard.close()


def run_job(
    job: SearchJob,
    cache_dir: Optional[str] = None,
    fault_spec: str = "",
    telemetry_dir: Optional[str] = None,
    hang: bool = False,
    store_dir: Optional[str] = None,
    seed_from_store: bool = False,
    store_tenant: str = "",
) -> JobResult:
    """Execute one job to completion in the current process.

    Importable at module top level (the process pool pickles it by
    reference).  Installs job-private ambient state — fresh fault plan,
    fresh metrics registry, fresh memory cache over the shared disk cache —
    so the result is a pure function of ``(job, disk cache contents)``,
    and disk-cache hits are answer-preserving by the cache's contract.

    With ``telemetry_dir`` set, the job's journal (spans, solver queries,
    per-run coverage heartbeats) streams to a private shard under
    ``<telemetry_dir>/shards/`` for the parent to tail and merge.
    Telemetry is strictly read-side: the generated suite and its digest
    are byte-identical with telemetry on or off.

    ``store_dir`` points at a shared content-addressed store
    (:class:`~repro.store.ContentStore`): the job's generated corpus and
    crash buckets are persisted into it (and, when no explicit
    ``cache_dir`` is given, its ``solver/`` namespace doubles as the
    disk query cache).  ``seed_from_store=True`` additionally seeds the
    search with every stored corpus entry recorded for this program
    source and entry point — deterministic given the store state, off
    by default so legacy digests stay byte-identical.  ``store_tenant``
    tags the store's access journal for per-tenant accounting.

    ``hang=True`` arms the injected ``hang`` fault for this job: the
    search wedges at its next run boundary until its deadline (or an
    external stop) reclaims it.  The supervisor passes it only on a
    job's first attempt, which is what keeps retries answer-preserving.
    """
    from ..search.directed import DirectedSearch, SearchConfig
    from ..store import (
        CORPUS_ENTRY_FORMAT,
        ContentStore,
        corpus_group,
        source_sha,
    )

    out = JobResult(
        key=job.key,
        scheduler=str(job.config.get("scheduler", "dfs")),
        worker_pid=os.getpid(),
        source_sha=source_sha(job.source),
    )
    plan = FaultPlan.parse(fault_spec) if fault_spec else NULL_PLAN
    registry = MetricsRegistry()
    cache = _job_cache(cache_dir if cache_dir else store_dir)
    store = (
        ContentStore(store_dir, tenant=store_tenant) if store_dir else None
    )
    shard = None
    start = time.perf_counter()
    try:
        program = parse_program(job.source)
        natives = build_natives(job.natives)
        mode = ConcretizationMode(job.strategy)
        options = dict(job.config)
        if seed_from_store and store is not None and "seed_corpus" not in options:
            # seed with the prior corpora recorded for this exact program
            # source + entry point; sorted-by-digest order makes the
            # seeded search a pure function of the store state
            with use_registry(registry):
                stored = store.load_group(
                    "corpus",
                    corpus_group(out.source_sha, job.entry),
                    expected_format=CORPUS_ENTRY_FORMAT,
                )
            seeds = [
                {str(k): int(v) for k, v in dict(entry["inputs"]).items()}
                for _digest, entry in stored
                if isinstance(entry.get("inputs"), dict)
            ]
            if seeds:
                options["seed_corpus"] = seeds
        config = SearchConfig.from_options(**options)
        with use_fault_plan(plan), use_registry(registry), use_cache(cache), \
                use_hang_request(hang):
            obs: Optional[Observability] = None
            if telemetry_dir:
                shard = _open_telemetry_shard(telemetry_dir, job.key, registry)
                if shard is not None:
                    obs = Observability(
                        tracer=Tracer(journal=shard),
                        metrics=registry,
                        journal=shard,
                    )
            search = DirectedSearch.for_mode(
                program, job.entry, natives, mode, config, obs=obs
            )
            try:
                result = search.run(dict(job.seed))
            except SearchInterrupted as exc:
                if isinstance(exc, DeadlineExceeded):
                    out.deadline_exceeded = True
                result = getattr(exc, "partial_result", None)
                if result is None:
                    raise
    except Exception as exc:  # noqa: BLE001 - contained per-job failure
        out.ok = False
        out.error = f"{type(exc).__name__}: {exc}"
        out.error_trace = _trace_tail(exc)
        if isinstance(exc, DeadlineExceeded):
            out.deadline_exceeded = True
        out.seconds = time.perf_counter() - start
        _seal_shard(shard, out)
        out.metrics = registry.snapshot()
        return out
    out.seconds = time.perf_counter() - start
    out.interrupted = result.interrupted
    out.runs = result.runs
    out.paths = result.distinct_paths
    out.errors = [str(e) for e in result.errors]
    out.crashes = [
        {
            "bucket": c.bucket,
            "count": c.count,
            "message": c.message,
            "run_index": c.run_index,
        }
        for c in result.crashes
    ]
    out.downgrades = dict(result.downgrades)
    out.deferred_flips = result.deferred_flips
    out.abandoned_flips = result.abandoned_flips
    out.divergences = result.divergences
    out.solver_calls = result.solver_calls
    out.coverage = (
        round(result.coverage.ratio(), 4) if result.coverage else None
    )
    out.suite_digest = suite_digest(result)
    out.generate_seconds = result.time_generating
    out.execute_seconds = result.time_executing
    corpus = TestCorpus()
    corpus.add_from_search(result)
    out.corpus = [
        {
            "inputs": entry.input_dict(),
            "returned": entry.returned,
            "error": entry.error,
            "error_message": entry.error_message,
        }
        for entry in corpus
    ]
    if store is not None:
        with use_registry(registry):
            _persist_job_outputs(store, job, out)
    disk = cache.disk
    out.cache = {
        "hits": cache.hits,
        "misses": cache.misses,
        "disk_hits": disk.hits if disk is not None else 0,
        "disk_misses": disk.misses if disk is not None else 0,
        "disk_stores": disk.stores if disk is not None else 0,
        "disk_skipped": disk.skipped if disk is not None else 0,
        "disk_corrupt_removed": (
            disk.corrupt_removed if disk is not None else 0
        ),
    }
    _seal_shard(shard, out)
    out.metrics = registry.snapshot()
    return out


def _persist_job_outputs(store, job: SearchJob, out: JobResult) -> None:
    """Record the job's corpus entries and crash buckets in the store.

    Write-side only (never observable in the job's suite or digest):
    corpus entries land under ``corpus/<group>/`` keyed by the digest of
    their input vector, crash buckets under ``crashes/<group>/`` keyed
    by the digest of the bucket string — both grouped by the program's
    source SHA-256 (plus entry point, for corpora) so a later campaign
    over the same program can enumerate them.  Entries already present
    are left untouched: re-running a campaign against a warm store is
    write-free.
    """
    from ..store import (
        CORPUS_ENTRY_FORMAT,
        CRASH_RECORD_FORMAT,
        corpus_group,
        crash_group,
        input_digest,
        source_sha,
    )

    group = corpus_group(out.source_sha, job.entry)
    for entry in out.corpus:
        inputs = entry.get("inputs")
        if not isinstance(inputs, dict):
            continue
        path = store.group_path("corpus", group, input_digest(inputs))
        if os.path.exists(path):
            continue
        store.save(
            "corpus",
            path,
            {
                "format": CORPUS_ENTRY_FORMAT,
                "source_sha": out.source_sha,
                "entry": job.entry,
                "inputs": {str(k): int(v) for k, v in inputs.items()},
                "returned": entry.get("returned"),
                "error": entry.get("error"),
                "error_message": entry.get("error_message"),
            },
        )
    group = crash_group(out.source_sha)
    for crash in out.crashes:
        bucket = str(crash.get("bucket", "?"))
        path = store.group_path("crashes", group, source_sha(bucket))
        if os.path.exists(path):
            continue
        store.save(
            "crashes",
            path,
            {
                "format": CRASH_RECORD_FORMAT,
                "source_sha": out.source_sha,
                "entry": job.entry,
                "bucket": bucket,
                "message": str(crash.get("message", "")),
                "count": int(crash.get("count", 0) or 0),
            },
        )


def _ensure_importable_by_children() -> None:
    """Make sure spawned workers can import this package.

    Spawned children re-import :mod:`repro` from scratch; if the parent
    found it through a ``sys.path`` entry that is not in ``PYTHONPATH``
    (the usual ``PYTHONPATH=src`` dev setup covers it, an in-process
    ``sys.path.insert`` does not), export that entry so the child's
    interpreter sees it too.
    """
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = (
            os.pathsep.join([package_root] + parts) if parts else package_root
        )


class ProcessPoolRunner:
    """Run a batch of jobs across worker processes (or in-process).

    Results come back in the *given job order* whatever the completion
    order; downstream merging re-sorts by key anyway.  ``progress`` (if
    given) is called with each finished :class:`JobResult` as it lands,
    in completion order — display only, never ordering-relevant.

    The runner owns *where* jobs execute; every dispatch is driven by a
    :class:`~repro.engine.supervisor.CampaignSupervisor`, which owns
    *whether they keep running* (deadlines, the heartbeat watchdog,
    bounded retry, quarantine, pool rebuilds, graceful shutdown — see
    :mod:`repro.engine.supervisor`).  At the default policy a healthy
    campaign behaves exactly as before; the supervisor only shows its
    hand when something wedges, dies, or a shutdown is requested.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        fault_spec: str = "",
        telemetry_dir: Optional[str] = None,
        supervisor: Optional["SupervisorConfig"] = None,
        store_dir: Optional[str] = None,
        seed_from_store: bool = False,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1 (got {workers})")
        self.workers = workers
        self.cache_dir = cache_dir
        self.fault_spec = fault_spec
        #: when set, every job ships its journal shard under this directory
        self.telemetry_dir = telemetry_dir
        #: shared content-addressed store (corpora + crash buckets; doubles
        #: as the solver disk cache when no explicit ``cache_dir`` is given)
        self.store_dir = os.path.abspath(store_dir) if store_dir else None
        #: seed each job's search from the store's prior corpora (OFF by
        #: default: classic campaigns stay byte-identical)
        self.seed_from_store = seed_from_store
        #: supervision policy (None = defaults: 2 attempts, no deadline)
        self.supervisor_config = supervisor
        #: worker-process kills contained so far (fault-injected or real)
        self.killed_workers = 0
        #: the supervisor of the most recent :meth:`run` (its tallies —
        #: retries, quarantines, stalls, rebuilds — feed the merger)
        self.last_supervisor = None

    # -- execution ---------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SearchJob],
        progress: Optional[Callable[[JobResult], None]] = None,
        checkpoint: Optional["CampaignCheckpoint"] = None,
    ) -> List[JobResult]:
        """Run ``jobs`` under supervision; results in the given job order.

        ``checkpoint`` (if given) persists each failed attempt and each
        finished job as it lands, making a SIGKILL'd campaign resumable
        without re-firing spent attempts.  Raises
        :class:`~repro.errors.SearchInterrupted` when a shutdown was
        requested mid-campaign (finished jobs are checkpointed first).
        """
        from .supervisor import CampaignSupervisor

        supervisor = CampaignSupervisor(
            self, self.supervisor_config, checkpoint=checkpoint
        )
        self.last_supervisor = supervisor
        return supervisor.run(list(jobs), progress)

    def serve(
        self,
        source,
        progress: Optional[Callable[[JobResult], None]] = None,
    ) -> int:
        """Serve job leases from ``source`` until it runs dry.

        The open-ended counterpart of :meth:`run` for the campaign
        service: ``source`` is a
        :class:`~repro.engine.supervisor.JobLeaseSource` whose leases
        carry their own campaign's checkpoint and telemetry directory.
        Returns the number of jobs settled.
        """
        from .supervisor import CampaignSupervisor

        supervisor = CampaignSupervisor(self, self.supervisor_config)
        self.last_supervisor = supervisor
        return supervisor.serve(source, progress)

    def _count_kill(self) -> None:
        self.killed_workers += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter("engine.worker_kills").inc()


class CampaignCheckpoint:
    """Per-job completion and attempt journal for interrupt-safe campaigns.

    Two kinds of JSONL lines under ``<dir>/jobs.jsonl``:

    - a **result** line (a :class:`JobResult` payload, distinguished by
      its ``format`` field) — the job is done and a rerun skips it;
    - an **attempt** line (``{"attempt_of": key, "attempt": n, "outcome":
      ..., ...}``) — one *failed* supervisor attempt, persisted so a
      killed-and-resumed campaign continues the attempt count instead of
      re-firing spent attempts (a job that already burned its budget is
      quarantined immediately on resume, not retried from scratch).

    Loading tolerates truncated tails (a write cut short by the
    interruption that the checkpoint exists to survive) and stale formats
    by skipping them.
    """

    FILENAME = "jobs.jsonl"

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, self.FILENAME)
        self._done: Dict[str, JobResult] = {}
        self._attempts: Dict[str, int] = {}
        self._last_attempt: Dict[str, Dict[str, object]] = {}
        self._load()
        self._broken = False

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(payload, dict):
                        continue
                    if "attempt_of" in payload:
                        key = str(payload["attempt_of"])
                        self._attempts[key] = max(
                            self._attempts.get(key, 0),
                            int(payload.get("attempt", 0) or 0),
                        )
                        self._last_attempt[key] = payload
                        continue
                    try:
                        result = JobResult.from_payload(payload)
                    except (ReproError, KeyError, ValueError, TypeError):
                        continue
                    self._done[result.key] = result
        except FileNotFoundError:
            pass

    def completed(self, key: str) -> Optional[JobResult]:
        """The saved result for ``key``, if this campaign already ran it."""
        return self._done.get(key)

    def attempts(self, key: str) -> int:
        """Failed attempts already spent on ``key`` (this run + prior runs)."""
        return self._attempts.get(key, 0)

    def last_attempt(self, key: str) -> Optional[Dict[str, object]]:
        """The most recent attempt-ledger line for ``key`` (for quarantine
        salvage on resume), or None."""
        return self._last_attempt.get(key)

    def record(self, result: JobResult) -> None:
        """Append one finished job (flushed immediately; best effort)."""
        self._done[result.key] = result
        self._append(result.to_payload())

    def record_attempt(
        self,
        key: str,
        attempt: int,
        outcome: str,
        error: str = "",
        partial: Optional[JobResult] = None,
    ) -> None:
        """Append one failed attempt to the ledger (flushed immediately).

        ``outcome`` names the failure class (``deadline``, ``error``,
        ``pool``, ``stalled``, ``timeout``); ``partial`` carries the
        attempt's salvaged partial result, kept so a quarantine after a
        kill→resume can still surface the best result seen.
        """
        line: Dict[str, object] = {
            "attempt_of": key,
            "attempt": int(attempt),
            "outcome": outcome,
        }
        if error:
            line["error"] = error
        if partial is not None:
            line["partial"] = partial.to_payload()
        self._attempts[key] = max(self._attempts.get(key, 0), int(attempt))
        self._last_attempt[key] = line
        self._append(line)

    def _append(self, payload: Dict[str, object]) -> None:
        if self._broken:
            return
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True))
                handle.write("\n")
                handle.flush()
        except OSError:
            # same policy as the run journal: count once, then disable
            self._broken = True
            registry = default_registry()
            if registry.enabled:
                registry.counter("engine.checkpoint_errors").inc()

    def __len__(self) -> int:
        return len(self._done)
