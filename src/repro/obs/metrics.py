"""Counters, gauges, and histograms with a process-wide default registry.

The instruments are deliberately tiny: a :class:`Counter` is an integer
that only goes up, a :class:`Gauge` is a last-write-wins value, and a
:class:`Histogram` keeps summary statistics (count/sum/min/max) rather
than buckets — enough to answer "where did the solver effort go" without
taxing the hot paths that record into them.

Instrumented modules (the SAT/SMT/LIA solvers, the validity engine, the
concolic executor) record into the *default registry*.  Out of the box
that is the :data:`NULL_REGISTRY`, whose instruments are shared no-ops, so
an uninstrumented run pays only a module-level lookup and a dead method
call per event.  Enabling collection is one call::

    registry = MetricsRegistry()
    old = set_default_registry(registry)
    try:
        ...  # run the workload
    finally:
        set_default_registry(old)
    print(registry.render_table())

or, scoped, ``with use_registry(MetricsRegistry()) as registry: ...``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_registry",
    "set_default_registry",
    "use_registry",
]


class Counter:
    """A monotonically increasing integer metric.

    Increments are lock-protected: the parallel frontier expander records
    solver metrics from worker threads, and ``+=`` on an attribute is not
    atomic under the interpreter.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-write-wins numeric metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Summary statistics over observed values (count/sum/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count} total={self.total:.6f} "
            f"mean={self.mean:.6f})"
        )


class MetricsRegistry:
    """Creates-on-first-use registry of named instruments.

    Instrument names are dotted paths (``sat.conflicts``,
    ``smt.check_seconds``); the renderer groups rows by their first
    component so ``repro stats`` shows one table per subsystem.
    """

    #: instrumented call sites may skip work when the registry is disabled
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------
    # create-on-first-use is lock-protected so two worker threads racing on
    # a new name cannot each create (and partially lose) an instrument

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name))
        return inst

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def render_table(self) -> str:
        """Aligned text table of all instruments, sorted by name."""
        rows: List[tuple] = []
        for name, c in self._counters.items():
            rows.append((name, str(c.value)))
        for name, g in self._gauges.items():
            rows.append((name, f"{g.value:g}"))
        for name, h in self._histograms.items():
            rows.append(
                (
                    name,
                    f"n={h.count} total={h.total:.4f}s mean={h.mean * 1e3:.2f}ms",
                )
            )
        if not rows:
            return "(no metrics recorded)"
        rows.sort()
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Disabled registry: all instruments are shared no-ops.

    Recording into it has no side effects, allocates nothing, and keeps
    the instrumented hot paths within the "observability off" overhead
    budget.
    """

    enabled = False

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: the process-wide disabled registry (the default)
NULL_REGISTRY = NullRegistry()

_default: MetricsRegistry = NULL_REGISTRY


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented modules record into."""
    return _default


def set_default_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (None restores the null registry); returns the old one."""
    global _default
    old = _default
    _default = registry if registry is not None else NULL_REGISTRY
    return old


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_default_registry` for tests and one-off sessions."""
    old = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(old)
