"""Unified observability: tracing spans, metrics, structured run journals.

Three cooperating pieces (each usable alone):

- :class:`~repro.obs.tracer.Tracer` — nestable ``with tracer.span(...)``
  regions with per-label aggregation (count, inclusive and exclusive wall
  time); the source of the ``repro stats`` profile table.
- :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  and summary histograms.  Solver and executor layers record into the
  process-wide *default registry*, which is a no-op until a session
  installs a real one (:func:`~repro.obs.metrics.set_default_registry`).
- :class:`~repro.obs.journal.RunJournal` — a JSONL stream of structured
  session events (``test_generated``, ``solver_query``, ``branch_flipped``,
  ``sample_recorded``, ``divergence_detected``, …), written for post-hoc
  analysis.  Deep layers emit to the *current journal*
  (:func:`~repro.obs.journal.current_journal`), null unless installed.

:class:`Observability` bundles the three for APIs that thread them
together (the directed search).  The default bundle keeps a real tracer —
span timings feed ``SearchResult.time_*`` either way — but null metrics
and journal, so observability stays effectively free until requested.

Campaign-wide telemetry builds on the same pieces:
:mod:`~repro.obs.shipper` ships per-worker journal shards and merges
them into one deterministic campaign stream, and
:mod:`~repro.obs.export` renders metrics snapshots as JSON/Prometheus
text and journals as Chrome trace-event JSON.

See docs/OBSERVABILITY.md for the event schema and span label catalogue.
"""

from __future__ import annotations

from typing import Optional, Union

from .journal import (
    NULL_JOURNAL,
    NullJournal,
    RunJournal,
    current_journal,
    install_journal,
    set_current_journal,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from .tracer import NULL_TRACER, NullTracer, Span, SpanStats, Tracer
from .export import (
    KERNEL_STAGES,
    journal_to_chrome_trace,
    render_prometheus,
    snapshot_to_json,
)
from .shipper import CampaignStats, ShardReader, merge_shards

__all__ = [
    "KERNEL_STAGES",
    "journal_to_chrome_trace",
    "render_prometheus",
    "snapshot_to_json",
    "CampaignStats",
    "ShardReader",
    "merge_shards",
    "Observability",
    "Tracer",
    "NullTracer",
    "Span",
    "SpanStats",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "default_registry",
    "set_default_registry",
    "use_registry",
    "RunJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "current_journal",
    "set_current_journal",
    "install_journal",
]


class Observability:
    """Bundle of tracer + metrics + journal threaded through a session.

    ``Observability()`` is the cheap default: a real tracer (span timings
    are needed for ``SearchResult.time_*`` compatibility), the process
    default metrics registry (no-op unless installed), and no journal.

    ``Observability.collecting(journal=...)`` builds a fully live bundle
    with a fresh registry — what the CLI's ``--trace``/``--profile`` and
    ``repro stats`` use.
    """

    __slots__ = ("tracer", "metrics", "journal")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal: Optional[Union[RunJournal, NullJournal]] = None,
    ) -> None:
        self.journal: Union[RunJournal, NullJournal] = (
            journal if journal is not None else NULL_JOURNAL
        )
        self.tracer = tracer if tracer is not None else Tracer(journal=journal)
        self.metrics = metrics if metrics is not None else default_registry()

    @classmethod
    def collecting(
        cls, journal: Optional[Union[RunJournal, NullJournal]] = None
    ) -> "Observability":
        """A live bundle: fresh registry, real tracer, optional journal."""
        return cls(
            tracer=Tracer(journal=journal),
            metrics=MetricsRegistry(),
            journal=journal,
        )

    def emit(self, kind: str, **fields: object):
        """Shortcut for ``self.journal.emit``."""
        return self.journal.emit(kind, **fields)

    def __repr__(self) -> str:
        return (
            f"Observability(journal={'on' if self.journal.enabled else 'off'}, "
            f"metrics={'on' if self.metrics.enabled else 'off'})"
        )
