"""Nestable tracing spans with per-label aggregation.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("solve", kind="euf"):
        ...

and aggregates, per label: call count, *inclusive* wall time (span entry
to exit) and *exclusive* ("self") wall time (inclusive minus time spent
in child spans).  Exclusive times of all labels sum to the root span's
inclusive time, which is what makes the ``repro stats`` profile table
add up: the per-span totals account for (approximately) 100% of
``SearchResult.time_total``.

When the tracer is built with a journal, every span exit additionally
emits a ``span`` event (label, seconds, depth) so the JSONL trace can be
reconstructed into a timeline.

The :data:`NULL_TRACER` singleton hands out a shared do-nothing span for
code paths that accept an optional tracer.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

__all__ = ["Span", "SpanStats", "Tracer", "NullTracer", "NULL_TRACER"]


class SpanStats:
    """Aggregated timings for one span label."""

    __slots__ = ("label", "count", "total", "self_total", "min", "max")

    def __init__(self, label: str) -> None:
        self.label = label
        self.count = 0
        #: inclusive seconds (entry to exit, children included)
        self.total = 0.0
        #: exclusive seconds (children's inclusive time subtracted)
        self.self_total = 0.0
        self.min = float("inf")
        self.max = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "self": self.self_total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.label}: n={self.count} total={self.total:.6f}s "
            f"self={self.self_total:.6f}s)"
        )


class Span:
    """One timed region; use as a context manager.

    After exit, :attr:`elapsed` holds the inclusive duration in seconds —
    callers that need the measurement (e.g. the directed search filling
    ``SearchResult.time_generating``) read it off the span object.
    """

    __slots__ = ("_tracer", "label", "fields", "start", "elapsed", "_child_time")

    def __init__(self, tracer: "Tracer", label: str, fields: Dict[str, object]) -> None:
        self._tracer = tracer
        self.label = label
        self.fields = fields
        self.start = 0.0
        self.elapsed = 0.0
        self._child_time = 0.0

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = perf_counter() - self.start
        tracer = self._tracer
        stack = tracer._stack
        stack.pop()
        stats = tracer._stats.get(self.label)
        if stats is None:
            stats = tracer._stats[self.label] = SpanStats(self.label)
        stats.count += 1
        stats.total += self.elapsed
        stats.self_total += self.elapsed - self._child_time
        if self.elapsed < stats.min:
            stats.min = self.elapsed
        if self.elapsed > stats.max:
            stats.max = self.elapsed
        if stack:
            stack[-1]._child_time += self.elapsed
        journal = tracer._journal
        if journal is not None and journal.enabled:
            journal.emit(
                "span",
                label=self.label,
                seconds=round(self.elapsed, 6),
                depth=len(stack),
                **self.fields,
            )


class Tracer:
    """Aggregating tracer; see the module docstring."""

    enabled = True

    def __init__(self, journal=None) -> None:
        self._journal = journal
        self._stack: List[Span] = []
        self._stats: Dict[str, SpanStats] = {}

    def span(self, label: str, **fields: object) -> Span:
        """A new nestable timed region labelled ``label``."""
        return Span(self, label, fields)

    # -- aggregation -------------------------------------------------------

    def stats(self) -> Dict[str, SpanStats]:
        """Per-label aggregates, in first-recorded order."""
        return dict(self._stats)

    def total(self, label: str) -> float:
        """Inclusive seconds recorded under ``label`` (0.0 if never seen)."""
        stats = self._stats.get(label)
        return stats.total if stats else 0.0

    def self_time_total(self) -> float:
        """Sum of exclusive times over all labels ≈ root inclusive time."""
        return sum(s.self_total for s in self._stats.values())

    def reset(self) -> None:
        self._stats.clear()

    def render_table(self) -> str:
        """Profile table: label, calls, self/total seconds, share of self time."""
        if not self._stats:
            return "(no spans recorded)"
        grand_self = self.self_time_total() or 1.0
        header = f"{'span':<24} {'calls':>7} {'self(s)':>9} {'total(s)':>9} {'mean(ms)':>9} {'self%':>6}"
        lines = [header, "-" * len(header)]
        ordered = sorted(
            self._stats.values(), key=lambda s: s.self_total, reverse=True
        )
        for s in ordered:
            lines.append(
                f"{s.label:<24} {s.count:>7} {s.self_total:>9.4f} "
                f"{s.total:>9.4f} {s.mean * 1e3:>9.3f} "
                f"{100.0 * s.self_total / grand_self:>5.1f}%"
            )
        lines.append(
            f"{'(sum of self times)':<24} {'':>7} {self.self_time_total():>9.4f}"
        )
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op span (elapsed stays 0.0)."""

    __slots__ = ()
    label = "<null>"
    elapsed = 0.0
    start = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: spans measure nothing and aggregate nothing.

    Note the directed search keeps a *real* tracer even in disabled
    observability mode, because ``SearchResult.time_*`` is built from span
    timings; the null tracer exists for callers that want zero measurement.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(journal=None)

    def span(self, label: str, **fields: object):  # type: ignore[override]
        return _NULL_SPAN


NULL_TRACER = NullTracer()
