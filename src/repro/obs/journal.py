"""Structured run journals: one JSON object per line, streamed to a file.

A :class:`RunJournal` records the events of a testing session —
``test_generated``, ``branch_flipped``, ``solver_query``,
``sample_recorded``, ``divergence_detected``, … — as JSONL so post-hoc
analysis is one ``json.loads`` per line away.  Every event carries a
monotonically increasing ``seq``, a wall-clock ``ts``, and a monotonic
``mono`` (``time.perf_counter``, immune to clock adjustments — the
timestamp latency analysis and the Chrome-trace exporter use); all
remaining fields are event-specific (see docs/OBSERVABILITY.md for the
schema).

Deeply nested layers (the SMT solver, the validity engine) do not take a
journal parameter through every constructor; instead they emit to the
*current journal*, a process-wide slot that is the no-op
:data:`NULL_JOURNAL` unless a session installs its own (the directed
search does this for the duration of :meth:`DirectedSearch.run`).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, TextIO, Union

from ..faults import current_fault_plan

#: one shared compact encoder for the emit hot path: building a
#: JSONEncoder per event (what json.dumps does) costs more than the
#: actual C-level encode for the small dicts journals write
_ENCODE = json.JSONEncoder(separators=(",", ":"), default=str).encode

__all__ = [
    "RunJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "current_journal",
    "set_current_journal",
    "install_journal",
]


class RunJournal:
    """Streams structured events to a JSONL file (or file-like object).

    Usage::

        with RunJournal("events.jsonl") as journal:
            journal.emit("search_started", entry="main", max_runs=100)

    Values that are not JSON-serializable are stringified rather than
    raised on, and an ``OSError`` on write (disk full, closed pipe, or an
    injected ``journal`` fault) disables the sink after counting a single
    ``obs.journal.write_errors`` — a journal must never take the session
    down.

    ``flush_every`` batches flushes: the handle is flushed every N-th
    event rather than on each one (campaign worker shards use a small
    batch so the parent's live tail stays fresh without paying one
    ``flush`` syscall per event).  ``autoflush=True`` with the default
    ``flush_every=1`` preserves the original flush-per-event behaviour.
    """

    enabled = True

    def __init__(
        self,
        target: Union[str, TextIO],
        autoflush: bool = True,
        clock: Callable[[], float] = time.time,
        mono_clock: Callable[[], float] = time.perf_counter,
        flush_every: int = 1,
    ) -> None:
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._autoflush = autoflush
        self._clock = clock
        self._mono_clock = mono_clock
        self._flush_every = max(1, int(flush_every))
        self._seq = 0
        self._closed = False
        #: solver layers emit from worker threads during speculative flip
        #: planning; the lock keeps seq assignment and line writes whole
        self._lock = threading.Lock()

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> Optional[Dict[str, object]]:
        """Write one event; returns the event dict (None once closed)."""
        with self._lock:
            if self._closed or not self.enabled:
                return None
            event: Dict[str, object] = {
                "seq": self._seq,
                "ts": round(self._clock(), 6),
                "mono": round(self._mono_clock(), 6),
                "kind": kind,
            }
            event.update(fields)
            try:
                current_fault_plan().fire("journal")
                self._handle.write(_ENCODE(event) + "\n")
                if self._autoflush and self._seq % self._flush_every == 0:
                    self._handle.flush()
            except OSError as exc:
                self._disable(exc)
                return None
            self._seq += 1
            return event

    def _disable(self, exc: OSError) -> None:
        """Stop writing after the first failed write; the search goes on."""
        self.enabled = False  # instance attribute shadows the class default
        self.write_error: Optional[str] = str(exc)
        from .metrics import default_registry

        registry = default_registry()
        if registry.enabled:
            registry.counter("obs.journal.write_errors").inc()

    @property
    def events_written(self) -> int:
        return self._seq

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                if self._owns_handle:
                    self._handle.close()
            except OSError:
                # a sink that died mid-session must not raise at close
                pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullJournal:
    """Disabled journal: :meth:`emit` is a no-op."""

    enabled = False
    events_written = 0

    def emit(self, kind: str, **fields: object) -> None:
        return None

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: the process-wide disabled journal (the default current journal)
NULL_JOURNAL = NullJournal()

_current: Union[RunJournal, NullJournal] = NULL_JOURNAL


def current_journal() -> Union[RunJournal, NullJournal]:
    """The journal deeply nested layers (solvers) emit to."""
    return _current


def set_current_journal(
    journal: Optional[Union[RunJournal, NullJournal]]
) -> Union[RunJournal, NullJournal]:
    """Install ``journal`` as current (None restores the null journal)."""
    global _current
    old = _current
    _current = journal if journal is not None else NULL_JOURNAL
    return old


@contextmanager
def install_journal(
    journal: Union[RunJournal, NullJournal]
) -> Iterator[Union[RunJournal, NullJournal]]:
    """Scoped :func:`set_current_journal`."""
    old = set_current_journal(journal)
    try:
        yield journal
    finally:
        set_current_journal(old)
