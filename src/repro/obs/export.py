"""Telemetry exporters: metrics snapshots and journals as standard formats.

Three render targets, all pure functions over already-collected data
(exporting can never perturb a search):

- **JSON** — :func:`snapshot_to_json` pretty-prints a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (counters, gauges,
  histogram summaries) with sorted keys, for machine diffing and the
  BENCH tooling.
- **Prometheus text exposition** — :func:`render_prometheus` renders the
  same snapshot in the ``text/plain; version=0.0.4`` exposition format:
  counters as ``counter``, gauges as ``gauge``, histogram summaries as a
  ``summary``-style ``_count``/``_sum`` pair plus ``_min``/``_max``
  gauges.  Dotted instrument names become underscore-separated metric
  names under a ``repro_`` prefix (``smt.check_seconds`` →
  ``repro_smt_check_seconds``).
- **Chrome trace-event JSON** — :func:`journal_to_chrome_trace` converts
  a (merged or single-run) journal into the Trace Event Format loadable
  in ``chrome://tracing`` and Perfetto: ``span`` events become complete
  (``"ph": "X"``) slices positioned on the monotonic clock (``mono``
  minus ``seconds``), everything else becomes an instant event, and each
  campaign job gets its own trace *process* named by job key.

:data:`KERNEL_STAGES` names the five staged-kernel span labels
(execute → derive → schedule → solve/generate → reconstitute); the CI
trace-export smoke asserts an exported trace contains all five.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional

__all__ = [
    "KERNEL_STAGES",
    "snapshot_to_json",
    "render_prometheus",
    "journal_to_chrome_trace",
    "load_journal",
]

#: span labels of the staged search kernel, in pipeline order
#: (the solve stage keeps its historical span label ``generate``)
KERNEL_STAGES = ("execute", "derive", "schedule", "generate", "reconstitute")

_PROM_UNSAFE = re.compile(r"[^a-zA-Z0-9_:]")


def snapshot_to_json(snapshot: Dict[str, object], indent: int = 2) -> str:
    """A metrics snapshot as deterministic (sorted-key) JSON text."""
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_PROM_UNSAFE.sub('_', name)}"


def _prom_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number):
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Dict[str, object], prefix: str = "repro"
) -> str:
    """A metrics snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if isinstance(counters, dict):
        for name in sorted(counters):
            metric = _prom_name(str(name), prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(counters[name])}")
    gauges = snapshot.get("gauges", {})
    if isinstance(gauges, dict):
        for name in sorted(gauges):
            metric = _prom_name(str(name), prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauges[name])}")
    histograms = snapshot.get("histograms", {})
    if isinstance(histograms, dict):
        for name in sorted(histograms):
            summary = histograms[name]
            if not isinstance(summary, dict):
                continue
            metric = _prom_name(str(name), prefix)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {_prom_value(summary.get('count', 0))}")
            lines.append(f"{metric}_sum {_prom_value(summary.get('total', 0.0))}")
            lines.append(f"# TYPE {metric}_min gauge")
            lines.append(f"{metric}_min {_prom_value(summary.get('min', 0.0))}")
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_prom_value(summary.get('max', 0.0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def load_journal(path: str) -> List[Dict[str, object]]:
    """Load a JSONL journal, skipping corrupt/truncated lines."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def _event_mono(event: Dict[str, object]) -> Optional[float]:
    mono = event.get("mono")
    if mono is None:
        return None
    try:
        return float(mono)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def journal_to_chrome_trace(
    events: Iterable[Dict[str, object]]
) -> Dict[str, object]:
    """A journal as a Chrome Trace Event Format object.

    ``span`` events become complete slices (``ph: "X"``): a span is
    journaled at exit with its duration, so its start is ``mono -
    seconds``; both land on the trace's microsecond clock.  All other
    events become thread-scoped instants.  Events carrying a ``job``
    field (a merged campaign stream) map to one trace process per job,
    labelled by a ``process_name`` metadata record; a single-run journal
    is one process.  Events without a usable ``mono`` are skipped —
    wall-clock ``ts`` does not survive clock adjustments, which is the
    reason ``mono`` exists.
    """
    events = list(events)
    trace_events: List[Dict[str, object]] = []
    pids: Dict[str, int] = {}
    jobs = sorted({str(e["job"]) for e in events if e.get("job")})
    for index, job in enumerate(jobs, start=1):
        pids[job] = index
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": index,
                "tid": 0,
                "args": {"name": job},
            }
        )
    for event in events:
        kind = str(event.get("kind", ""))
        if kind == "shard_opened":
            continue
        mono = _event_mono(event)
        if mono is None:
            continue
        pid = pids.get(str(event.get("job", "")), 0)
        args = {
            k: v
            for k, v in event.items()
            if k not in ("seq", "ts", "mono", "kind", "job", "gseq")
        }
        if kind == "span":
            try:
                seconds = float(event.get("seconds", 0.0))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                seconds = 0.0
            trace_events.append(
                {
                    "name": str(event.get("label", "span")),
                    "cat": "span",
                    "ph": "X",
                    "pid": pid,
                    "tid": 1,
                    "ts": round((mono - seconds) * 1e6, 3),
                    "dur": round(seconds * 1e6, 3),
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": 1,
                    "ts": round(mono * 1e6, 3),
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
