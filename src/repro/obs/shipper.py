"""Cross-process journal shipping: worker shards → one campaign stream.

PR 1's :class:`~repro.obs.journal.RunJournal` is strictly per-process:
one search session, one JSONL file.  The multi-process campaign engine
(:mod:`repro.engine.runner`) runs many sessions in many worker processes
at once, so campaign-wide telemetry needs a shipping layer:

- **Shards** — each worker writes its job's journal to a private *shard*
  file under ``<telemetry-dir>/shards/``, named by the job key (plus a
  short content hash so hostile key characters cannot collide after
  sanitization).  The first event of every shard is a ``shard_opened``
  header carrying the job key and worker pid, so a shard is
  self-describing even if renamed.
- **Merging** — :func:`merge_shards` folds every shard into one ordered
  campaign stream, ``campaign.jsonl``.  Merge order is **deterministic**:
  events are ordered by ``(job key, seq)``, never by arrival time or
  worker id, so the merged stream is identical at any ``--workers`` value
  (the same discipline that keeps the campaign digest worker-count
  invariant).  Each merged event gains ``job`` (its shard's key) and
  ``gseq`` (its position in the merged order).
- **Tailing** — :class:`ShardReader` incrementally reads complete lines
  appended to the shard directory since the last poll, which is what
  lets ``repro stats --follow`` watch a *running* campaign without any
  coordination with the workers (shards are append-only; a partial final
  line is simply not yielded yet).
- **Aggregation** — :class:`CampaignStats` folds shard events and
  checkpointed job results into per-job rollups (coverage, solve rate,
  cache hit rate, ladder downgrades, crash buckets) for the live view
  and the ``repro stats <campaign-dir>`` table.

Everything here is read-side or append-only: shipping telemetry can
never perturb search answers, and suite/campaign digests are
byte-identical with telemetry on or off.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .journal import RunJournal, _ENCODE

__all__ = [
    "SHARD_DIR",
    "CAMPAIGN_JOURNAL",
    "shard_path",
    "open_shard",
    "list_shards",
    "iter_shard_events",
    "merge_shards",
    "ShardReader",
    "ShardReaderGroup",
    "JobTelemetry",
    "CampaignStats",
]

#: shard files live under <telemetry-dir>/shards/
SHARD_DIR = "shards"
#: the merged campaign event stream file name
CAMPAIGN_JOURNAL = "campaign.jsonl"

#: shard journals flush every N events: fresh enough for a live tail,
#: far cheaper than one flush syscall per event
SHARD_FLUSH_EVERY = 16

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _shard_name(job_key: str) -> str:
    """Filesystem-safe shard file name for a job key (collision-proof)."""
    stem = _UNSAFE.sub("_", job_key)[:80].strip("_") or "job"
    digest = hashlib.sha256(job_key.encode("utf-8")).hexdigest()[:8]
    return f"{stem}-{digest}.jsonl"


def shard_path(telemetry_dir: str, job_key: str) -> str:
    """The shard file a job's journal is shipped to."""
    return os.path.join(telemetry_dir, SHARD_DIR, _shard_name(job_key))


def open_shard(
    telemetry_dir: str, job_key: str, worker_pid: int = 0
) -> RunJournal:
    """Open (truncating) a job's shard journal and write its header.

    The ``shard_opened`` header event tags the whole shard with the job
    key and worker pid; the merger reads it back, so the shard's file
    name is a convenience, not a source of truth.
    """
    path = shard_path(telemetry_dir, job_key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    journal = RunJournal(path, flush_every=SHARD_FLUSH_EVERY)
    journal.emit("shard_opened", job=job_key, worker=int(worker_pid))
    return journal


def iter_shard_events(path: str) -> Iterator[Dict[str, object]]:
    """Parse one shard's events, skipping corrupt/truncated lines."""
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # a write cut short mid-line; never fatal
            if isinstance(event, dict):
                yield event


def list_shards(telemetry_dir: str) -> List[Tuple[str, str]]:
    """``(job_key, path)`` for every readable shard, sorted by job key.

    The job key comes from the ``shard_opened`` header (first parseable
    event); a shard with no readable header is skipped.  Sorting by job
    key (file name as tie-break) is what makes every downstream
    consumer's ordering deterministic.
    """
    directory = os.path.join(telemetry_dir, SHARD_DIR)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    shards: List[Tuple[str, str]] = []
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(directory, name)
        for event in iter_shard_events(path):
            if event.get("kind") == "shard_opened" and event.get("job"):
                shards.append((str(event["job"]), path))
            break
    shards.sort()
    return shards


def merge_shards(
    telemetry_dir: str, out_path: Optional[str] = None
) -> Tuple[str, int]:
    """Merge every shard into one ordered ``campaign.jsonl``.

    Events are ordered by ``(job key, seq)`` — a pure function of shard
    contents, independent of worker count and completion order — and
    tagged with ``job`` and a global ``gseq``.  The stream is written to
    a temp file and published atomically, so a concurrent ``--follow``
    reader only ever sees an absent or complete file.  Returns
    ``(path, merged event count)``.
    """
    out_path = out_path or os.path.join(telemetry_dir, CAMPAIGN_JOURNAL)
    shards = list_shards(telemetry_dir)
    count = 0
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(out_path) or ".", prefix=".tmp-", suffix=".jsonl"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for job_key, path in shards:
                events = sorted(
                    iter_shard_events(path),
                    key=lambda e: int(e.get("seq", 0)),  # type: ignore[call-overload]
                )
                for event in events:
                    event["job"] = job_key
                    event["gseq"] = count
                    handle.write(_ENCODE(event) + "\n")
                    count += 1
        os.replace(tmp, out_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return out_path, count


class ShardReader:
    """Incremental reader over a growing shard directory.

    ``poll()`` returns the complete events appended since the previous
    poll, as ``(job_key, event)`` pairs in deterministic ``(job key,
    seq)`` order *within the poll batch*.  Bytes after the last newline
    are left for the next poll (the writer may be mid-line).  New shards
    appearing between polls are picked up automatically.
    """

    def __init__(self, telemetry_dir: str) -> None:
        self.telemetry_dir = telemetry_dir
        self._offsets: Dict[str, int] = {}
        self._jobs: Dict[str, str] = {}

    def poll(self) -> List[Tuple[str, Dict[str, object]]]:
        directory = os.path.join(self.telemetry_dir, SHARD_DIR)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return []
        batch: List[Tuple[str, Dict[str, object]]] = []
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(directory, name)
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            complete, _, _partial = chunk.rpartition("\n")
            if not complete:
                continue
            self._offsets[path] = offset + len(complete.encode("utf-8")) + 1
            for line in complete.split("\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(event, dict):
                    continue
                if event.get("kind") == "shard_opened" and event.get("job"):
                    self._jobs[path] = str(event["job"])
                job = self._jobs.get(path, os.path.splitext(name)[0])
                batch.append((job, event))
        batch.sort(key=lambda pair: (pair[0], int(pair[1].get("seq", 0))))  # type: ignore[call-overload]
        return batch


class ShardReaderGroup:
    """One incremental tail over *many* telemetry directories.

    The campaign service ships every campaign's shards into its own
    directory (the campaign dir doubles as the telemetry dir), but the
    shared fleet has exactly one heartbeat watchdog — this group is the
    demux between the two: :meth:`watch` lazily registers a directory,
    :meth:`poll` folds every registered reader's new events into one
    batch, deterministically ordered by ``(directory, job key, seq)``.
    Re-watching a directory is a no-op, so callers can re-assert the
    in-flight set every tick without resetting offsets.
    """

    def __init__(self) -> None:
        self._readers: Dict[str, ShardReader] = {}

    def watch(self, telemetry_dir: Optional[str]) -> None:
        if not telemetry_dir:
            return
        key = os.path.abspath(telemetry_dir)
        if key not in self._readers:
            self._readers[key] = ShardReader(telemetry_dir)

    def poll(self) -> List[Tuple[str, Dict[str, object]]]:
        batch: List[Tuple[str, Dict[str, object]]] = []
        for directory in sorted(self._readers):
            batch.extend(self._readers[directory].poll())
        return batch


@dataclass
class JobTelemetry:
    """Live rollup of one job, folded from shard events and/or its
    checkpointed :class:`~repro.engine.runner.JobResult`."""

    key: str
    state: str = "running"
    #: supervisor attempts observed (attempt-ledger lines + the result)
    attempts: int = 1
    scheduler: str = ""
    worker: int = 0
    runs: int = 0
    paths: int = 0
    tests: int = 0
    errors: int = 0
    divergences: int = 0
    solver_queries: int = 0
    sat_queries: int = 0
    solver_calls: int = 0
    deferred: int = 0
    abandoned: int = 0
    coverage: Optional[float] = None
    seconds: float = 0.0
    events: int = 0
    downgrades: Dict[str, int] = field(default_factory=dict)
    crashes: Dict[str, int] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)

    @property
    def solve_rate(self) -> Optional[float]:
        """SAT answers per solver query (None before the first query)."""
        if not self.solver_queries:
            return None
        return self.sat_queries / self.solver_queries

    @property
    def cache_hit_rate(self) -> Optional[float]:
        hits = self.cache.get("hits", 0) + self.cache.get("disk_hits", 0)
        misses = self.cache.get("misses", 0)
        total = hits + misses
        return hits / total if total else None

    @property
    def disk_hit_rate(self) -> Optional[float]:
        hits = self.cache.get("disk_hits", 0)
        total = hits + self.cache.get("disk_misses", 0)
        return hits / total if total else None


class CampaignStats:
    """Campaign-wide aggregation for the live view and rollup tables.

    Two inputs, folded in any order:

    - :meth:`consume` — one shard/campaign-stream event (live tail);
    - :meth:`fold_result` — one checkpointed job-result payload
      (authoritative once a job finished; overwrites the event-derived
      approximation for that job).
    """

    def __init__(self) -> None:
        self.jobs: Dict[str, JobTelemetry] = {}
        self.total_events = 0
        #: scheduler/engine counters aggregated from finished job metrics
        self.counters: Dict[str, int] = {}

    # -- input: journal events --------------------------------------------

    def job(self, key: str) -> JobTelemetry:
        entry = self.jobs.get(key)
        if entry is None:
            entry = self.jobs[key] = JobTelemetry(key=key)
        return entry

    def consume(self, job_key: str, event: Dict[str, object]) -> None:
        job = self.job(job_key)
        if job.state == "done-checkpointed":
            # the checkpointed result already summarized this job exactly
            self.total_events += 1
            return
        job.events += 1
        self.total_events += 1
        kind = event.get("kind")
        if kind == "shard_opened":
            job.worker = int(event.get("worker", 0))  # type: ignore[call-overload]
        elif kind == "search_started":
            job.scheduler = str(event.get("scheduler", ""))
        elif kind == "run_executed":
            job.runs = max(job.runs, int(event.get("run", 0)) + 1)  # type: ignore[call-overload]
            coverage = event.get("coverage")
            if coverage is not None:
                job.coverage = float(coverage)  # type: ignore[arg-type]
            cache = event.get("cache")
            if isinstance(cache, dict):
                job.cache = {
                    str(k): int(v) for k, v in cache.items()  # type: ignore[call-overload]
                }
        elif kind == "test_generated":
            job.tests += 1
        elif kind == "solver_query":
            job.solver_queries += 1
            if event.get("sat"):
                job.sat_queries += 1
        elif kind == "error_found":
            job.errors += 1
        elif kind == "divergence_detected":
            job.divergences += 1
        elif kind == "crash_contained":
            bucket = str(event.get("bucket", "?"))
            job.crashes[bucket] = job.crashes.get(bucket, 0) + 1
        elif kind == "flip_downgraded":
            rung = str(event.get("rung", "?"))
            job.downgrades[rung] = job.downgrades.get(rung, 0) + 1
        elif kind == "flip_deferred":
            job.deferred += 1
        elif kind == "flip_abandoned":
            job.abandoned += 1
        elif kind == "search_finished":
            job.state = "done"
            job.runs = int(event.get("runs", job.runs))  # type: ignore[call-overload]
            job.paths = int(event.get("paths", job.paths))  # type: ignore[call-overload]
            job.errors = int(event.get("errors", job.errors))  # type: ignore[call-overload]
            job.divergences = int(  # type: ignore[call-overload]
                event.get("divergences", job.divergences)
            )
            job.solver_calls = int(  # type: ignore[call-overload]
                event.get("solver_calls", job.solver_calls)
            )
            job.seconds = float(event.get("seconds", job.seconds))  # type: ignore[arg-type]
            coverage = event.get("coverage")
            if coverage is not None:
                job.coverage = float(coverage)  # type: ignore[arg-type]
        elif kind == "job_finished":
            if not event.get("ok", True):
                job.state = "failed"

    # -- input: checkpointed job results -----------------------------------

    def fold_result(self, payload: Dict[str, object]) -> None:
        """Fold one ``jobs.jsonl`` job-result payload (authoritative)."""
        key = str(payload.get("key", ""))
        if not key:
            return
        job = self.job(key)
        if payload.get("quarantined"):
            job.state = "quarantined"
        elif not payload.get("ok", True):
            job.state = "failed"
        else:
            job.state = "done-checkpointed"
        job.attempts = max(job.attempts, int(payload.get("attempts", 1) or 1))
        job.scheduler = str(payload.get("scheduler", job.scheduler))
        job.worker = int(payload.get("worker_pid", job.worker))  # type: ignore[call-overload]
        job.runs = int(payload.get("runs", 0))  # type: ignore[call-overload]
        job.paths = int(payload.get("paths", 0))  # type: ignore[call-overload]
        job.tests = len(payload.get("corpus", []) or [])  # type: ignore[arg-type]
        job.errors = len(payload.get("errors", []) or [])  # type: ignore[arg-type]
        job.divergences = int(payload.get("divergences", 0))  # type: ignore[call-overload]
        job.solver_calls = int(payload.get("solver_calls", 0))  # type: ignore[call-overload]
        job.deferred = int(payload.get("deferred_flips", 0))  # type: ignore[call-overload]
        job.abandoned = int(payload.get("abandoned_flips", 0))  # type: ignore[call-overload]
        job.seconds = float(payload.get("seconds", 0.0))  # type: ignore[arg-type]
        coverage = payload.get("coverage")
        job.coverage = float(coverage) if coverage is not None else None  # type: ignore[arg-type]
        job.downgrades = {
            str(k): int(v)  # type: ignore[call-overload]
            for k, v in dict(payload.get("downgrades", {}) or {}).items()
        }
        job.crashes = {}
        for crash in payload.get("crashes", []) or []:  # type: ignore[union-attr]
            bucket = str(dict(crash).get("bucket", "?"))
            job.crashes[bucket] = job.crashes.get(bucket, 0) + int(
                dict(crash).get("count", 1)
            )
        job.cache = {
            str(k): int(v)  # type: ignore[call-overload]
            for k, v in dict(payload.get("cache", {}) or {}).items()
        }
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            counters = metrics.get("counters")
            if isinstance(counters, dict):
                queries = counters.get("smt.checks")
                if queries:
                    job.solver_queries = int(queries)  # type: ignore[call-overload]
                    job.sat_queries = int(counters.get("smt.sat", 0))  # type: ignore[call-overload]
                for name, value in counters.items():
                    name = str(name)
                    if name.startswith(
                        ("search.scheduler.", "engine.", "kernel.", "store.")
                    ):
                        self.counters[name] = self.counters.get(name, 0) + int(
                            value  # type: ignore[call-overload]
                        )

    def fold_checkpoint(self, campaign_dir: str) -> int:
        """Fold every readable job line of ``<dir>/jobs.jsonl``; returns
        how many finished jobs were folded."""
        path = os.path.join(campaign_dir, "jobs.jsonl")
        folded = 0
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            return 0
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(payload, dict):
                    continue
                if "attempt_of" in payload:
                    # supervisor attempt-ledger line: N failed attempts
                    # means the job is on (or ended after) attempt N+1
                    job = self.job(str(payload["attempt_of"]))
                    job.attempts = max(
                        job.attempts,
                        int(payload.get("attempt", 0) or 0) + 1,
                    )
                    continue
                self.fold_result(payload)
                folded += 1
        return folded

    # -- derived totals ----------------------------------------------------

    def ordered_jobs(self) -> List[JobTelemetry]:
        return [self.jobs[key] for key in sorted(self.jobs)]

    @property
    def finished_jobs(self) -> int:
        return sum(
            1 for j in self.jobs.values() if j.state.startswith("done")
        ) + self.failed_jobs + self.quarantined_jobs

    @property
    def failed_jobs(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == "failed")

    @property
    def quarantined_jobs(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == "quarantined")

    @property
    def running_jobs(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == "running")

    def crash_buckets(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self.jobs.values():
            for bucket, count in job.crashes.items():
                out[bucket] = out.get(bucket, 0) + count
        return out

    def downgrade_totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self.jobs.values():
            for rung, count in job.downgrades.items():
                out[rung] = out.get(rung, 0) + count
        return out

    def cache_totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self.jobs.values():
            for name, value in job.cache.items():
                out[name] = out.get(name, 0) + value
        return out
