"""Normalized solver-query cache: memoized sat/unsat results and models.

Queries are keyed on their :func:`~repro.solver.terms.canonical_query`
form — identical up to a bijective renaming of variables and function
symbols — so structurally repeated work (sibling branch flips, repeated
validity candidates, re-runs of the same search) is answered from memory.

Models are stored *canonically* (values indexed by the canonical variable
and function numbering) and translated back through the asking query's own
leaves on a hit, so a cache populated by one :class:`TermManager` serves
queries from any other.

Determinism contract
--------------------
Only **stateless** solves are cached: a fresh :class:`~repro.solver.smt.Solver`
re-encodes its query from scratch, so its answer is a pure function of the
canonical key.  A hit therefore returns exactly what a cold solve would
have computed, which makes cache *population order* unobservable — the
property the parallel frontier expander relies on for reproducible output
regardless of worker count.  Incremental sessions
(:mod:`repro.solver.session`) carry solver state across queries and are
deliberately **not** routed through this cache.

Hits and misses are counted in the default metrics registry as
``solver.cache.hits`` / ``solver.cache.misses``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from ..obs.metrics import default_registry
from .terms import CanonicalQuery, FunctionSymbol

__all__ = [
    "CachedResult",
    "QueryCache",
    "default_cache",
    "set_default_cache",
    "use_cache",
]


class CachedResult:
    """One memoized solver verdict in canonical (renamed) form.

    ``int_values`` maps canonical variable indices to model values,
    ``bool_values`` likewise for boolean variables, and ``tables`` maps
    canonical function indices to finite ``args -> value`` tables.  All of
    it is immutable once stored — entries are shared between threads.
    """

    __slots__ = ("sat", "iterations", "int_values", "bool_values", "tables", "default")

    def __init__(
        self,
        sat: bool,
        iterations: int,
        int_values: Optional[Dict[int, int]] = None,
        bool_values: Optional[Dict[int, bool]] = None,
        tables: Optional[Dict[int, Dict[Tuple[int, ...], int]]] = None,
        default: int = 0,
    ) -> None:
        self.sat = sat
        self.iterations = iterations
        self.int_values = dict(int_values or {})
        self.bool_values = dict(bool_values or {})
        self.tables = {k: dict(v) for k, v in (tables or {}).items()}
        self.default = default


class QueryCache:
    """A thread-safe LRU of canonical query results.

    The lock only guards the OrderedDict bookkeeping; entries themselves
    are immutable, so readers never see a half-written result.

    With ``disk`` set (a :class:`~repro.solver.diskcache.DiskCache`), the
    cache gains a persistent second tier: a memory miss falls through to
    disk — a disk hit is promoted into memory and counted as a hit — and
    every store is written through, so the directory accumulates verdicts
    across processes and runs.  The disk tier serves the same canonical
    entries the memory tier does, so attaching it cannot change any
    generated suite, only how often the solver actually runs.
    """

    def __init__(self, capacity: int = 4096, disk: Optional[object] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: optional persistent tier (duck-typed: lookup/store like ours)
        self.disk = disk
        self._entries: "OrderedDict[Tuple[object, ...], CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: memory misses answered by the disk tier (subset of ``hits``)
        self.disk_hits = 0

    def lookup(self, key: Tuple[object, ...]) -> Optional[CachedResult]:
        """Return the entry for ``key`` (refreshing its LRU position)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        from_disk = False
        if entry is None and self.disk is not None:
            entry = self.disk.lookup(key)
            if entry is not None:
                from_disk = True
                with self._lock:
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
        with self._lock:
            if entry is not None:
                self.hits += 1
                if from_disk:
                    self.disk_hits += 1
            else:
                self.misses += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter(
                "solver.cache.hits" if entry is not None else "solver.cache.misses"
            ).inc()
        return entry

    def store(self, key: Tuple[object, ...], entry: CachedResult) -> None:
        """Insert ``entry``, evicting the least recently used on overflow."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        if self.disk is not None:
            self.disk.store(key, entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk files persist)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: process-wide cache shared by every stateless solver query
_default: Optional[QueryCache] = QueryCache()


def default_cache() -> Optional[QueryCache]:
    """The process-wide query cache (None when caching is disabled)."""
    return _default


def set_default_cache(cache: Optional[QueryCache]) -> Optional[QueryCache]:
    """Install ``cache`` as the process default (None disables caching)."""
    global _default
    old = _default
    _default = cache
    return old


@contextmanager
def use_cache(cache: Optional[QueryCache]) -> Iterator[Optional[QueryCache]]:
    """Scoped :func:`set_default_cache` — for tests and cold-solver runs."""
    old = set_default_cache(cache)
    try:
        yield cache
    finally:
        set_default_cache(old)
