"""Certificates for validity verdicts: independently re-checkable proofs.

The paper's tests are "derived from validity proofs".  This module makes
the proof object explicit so a downstream consumer can re-verify it with a
fresh solver instance (or export it to SMT-LIB for an external check):

- a :class:`ValidityCertificate` packages the strategy σ and asserts
  ``A ∧ ¬pc[σ]`` is UNSAT — the quantifier-free reduction of
  ``∀F (A ⇒ pc[σ])``;
- an :class:`InvalidityCertificate` packages the adversary interpretation
  and asserts ``∃X pc[f_adv]`` is UNSAT while ``f_adv`` agrees with every
  recorded sample.

``certify`` builds the appropriate certificate from a
:class:`~repro.solver.validity.ValidityResult` and re-checks it
immediately, so a buggy strategy or adversary can never be packaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SolverError
from .smt import Model, Solver
from .terms import Term, TermManager
from .validity import (
    AppValue,
    Sample,
    Strategy,
    ValidityChecker,
    ValidityResult,
    ValidityStatus,
)

__all__ = ["ValidityCertificate", "InvalidityCertificate", "certify"]


@dataclass
class ValidityCertificate:
    """Proof that ``∀F ∃X (A ⇒ pc)`` is valid, witnessed by strategy σ."""

    pc: Term
    input_vars: List[Term]
    samples: List[Sample]
    strategy: Strategy

    def check(self, manager: TermManager) -> bool:
        """Re-verify: ``A ∧ ¬pc[σ]`` must be UNSAT."""
        checker = ValidityChecker(manager)
        antecedent = checker._antecedent(self.samples)
        mapping: Dict[Term, Term] = {}
        for v in self.input_vars:
            name = v.name or ""
            if name not in self.strategy.assignments:
                return False
            mapping[v] = checker._strategy_term(self.strategy.assignments[name])
        grounded = manager.substitute(self.pc, mapping)
        solver = Solver(manager)
        solver.add(antecedent)
        return not solver.check(manager.mk_not(grounded)).sat

    def to_smtlib(self, manager: TermManager) -> str:
        """The certificate's UNSAT obligation as an SMT-LIB script."""
        from .printer import script_for_sat

        checker = ValidityChecker(manager)
        antecedent = checker._antecedent(self.samples)
        mapping = {
            v: checker._strategy_term(self.strategy.assignments[v.name or ""])
            for v in self.input_vars
        }
        grounded = manager.substitute(self.pc, mapping)
        return script_for_sat([antecedent, manager.mk_not(grounded)])

    def __str__(self) -> str:
        return (
            f"ValidityCertificate(strategy={self.strategy}, "
            f"samples={len(self.samples)})"
        )


@dataclass
class InvalidityCertificate:
    """Proof that ``∀F ∃X (A ⇒ pc)`` is invalid, witnessed by an adversary."""

    pc: Term
    input_vars: List[Term]
    samples: List[Sample]
    adversary: Model

    def check(self, manager: TermManager) -> bool:
        """Re-verify: the adversary respects samples and defeats all X."""
        checker = ValidityChecker(manager)
        if not checker._consistent_with_samples(self.adversary, self.samples):
            return False
        grounded = checker._pc_under_function_general(self.pc, self.adversary)
        solver = Solver(manager)
        return not solver.check(grounded).sat

    def __str__(self) -> str:
        return (
            f"InvalidityCertificate(adversary default={self.adversary.default}, "
            f"samples={len(self.samples)})"
        )


def certify(
    manager: TermManager,
    result: ValidityResult,
    pc: Term,
    input_vars: Sequence[Term],
    samples: Sequence[Sample] = (),
):
    """Package a verdict into a certificate and re-check it immediately.

    Returns a :class:`ValidityCertificate` or :class:`InvalidityCertificate`.
    Raises :class:`SolverError` for UNKNOWN verdicts, verdicts lacking a
    witness, or witnesses that fail re-verification.
    """
    if result.status is ValidityStatus.VALID:
        if result.strategy is None:
            raise SolverError("VALID verdict without a strategy")
        cert = ValidityCertificate(
            pc=pc,
            input_vars=list(input_vars),
            samples=list(samples),
            strategy=result.strategy,
        )
        if not cert.check(manager):
            raise SolverError(f"strategy failed re-verification: {result.strategy}")
        return cert
    if result.status is ValidityStatus.INVALID:
        if result.adversary is None:
            # the "A ∧ pc unsatisfiable" fast path has no explicit
            # adversary; any sample-consistent interpretation works
            checker = ValidityChecker(manager)
            fns = sorted(pc.uf_symbols(), key=lambda f: f.name)
            adversary = checker._table_adversary(fns, list(samples), default=0)
        else:
            adversary = result.adversary
        cert = InvalidityCertificate(
            pc=pc,
            input_vars=list(input_vars),
            samples=list(samples),
            adversary=adversary,
        )
        if not cert.check(manager):
            raise SolverError("adversary failed re-verification")
        return cert
    raise SolverError("cannot certify an UNKNOWN verdict")
