"""Per-query solver budgets with a process-wide ambient default.

Every layer of the solver stack already enforces a resource limit — lazy
SMT iterations (:mod:`.smt`, :mod:`.session`), CDCL conflicts
(:mod:`.sat`), branch-and-bound branches and simplex pivots
(:mod:`.lia`) — but the limits were hard-coded per constructor, so a
caller who wants to *degrade* a query (retry it cheaper, or re-queue it
with more headroom) had no single knob.  :class:`SolverBudget` bundles the
limits, and the *current budget* slot (same pattern as the journal and
metrics registry in :mod:`repro.obs`) lets high-level policies like the
directed search's degradation ladder scope a budget over arbitrarily deep
solver construction without threading a parameter through every layer::

    with use_budget(DEFAULT_BUDGET.scaled(4)):
        backend.generate(request)   # every Solver/SolverSession inside
                                    # inherits the escalated limits

A :class:`~repro.errors.ResourceLimitError` raised under a budget means
"this query was not decided within the allotted resources" — the caller
chooses whether to degrade, defer, or give up.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

__all__ = [
    "SolverBudget",
    "DEFAULT_BUDGET",
    "DEGRADED_BUDGET",
    "current_budget",
    "set_budget",
    "use_budget",
]


@dataclass(frozen=True)
class SolverBudget:
    """Resource limits applied to one solver query (or session)."""

    #: lazy SMT loop iterations (SAT models proposed per check)
    max_iterations: int = 5_000
    #: CDCL conflicts (cumulative per solver instance)
    max_conflicts: int = 500_000
    #: LIA branch-and-bound branches per theory check
    max_branches: int = 2_000
    #: simplex pivots per LP solve
    max_pivots: int = 200_000

    def scaled(self, factor: float) -> "SolverBudget":
        """A budget with every limit multiplied by ``factor`` (min 1)."""
        return SolverBudget(
            max_iterations=max(1, int(self.max_iterations * factor)),
            max_conflicts=max(1, int(self.max_conflicts * factor)),
            max_branches=max(1, int(self.max_branches * factor)),
            max_pivots=max(1, int(self.max_pivots * factor)),
        )

    def with_(self, **overrides: int) -> "SolverBudget":
        return replace(self, **overrides)


#: the limits the solvers have always shipped with
DEFAULT_BUDGET = SolverBudget()

#: the budget for degraded (concretized, UF-free) fallback queries: these
#: formulas are structurally much simpler, so a slim budget guarantees the
#: ladder terminates quickly even when the full query was hopeless
DEGRADED_BUDGET = SolverBudget(
    max_iterations=1_000,
    max_conflicts=100_000,
    max_branches=500,
    max_pivots=50_000,
)

_current: SolverBudget = DEFAULT_BUDGET


def current_budget() -> SolverBudget:
    """The budget newly constructed solvers inherit."""
    return _current


def set_budget(budget: Optional[SolverBudget]) -> SolverBudget:
    """Install ``budget`` as current (None restores the default)."""
    global _current
    old = _current
    _current = budget if budget is not None else DEFAULT_BUDGET
    return old


@contextmanager
def use_budget(budget: SolverBudget) -> Iterator[SolverBudget]:
    """Scoped :func:`set_budget`."""
    old = set_budget(budget)
    try:
        yield budget
    finally:
        set_budget(old)
