"""General simplex for linear rational arithmetic (Dutertre–de Moura style).

This is the feasibility engine underneath the linear *integer* arithmetic
solver in :mod:`repro.solver.lia`.  It decides conjunctions of bound
constraints over a tableau of linear forms, produces rational models, and
explains infeasibility as a conflict set of asserted-bound *tags*.

The design follows the solver described in "A Fast Linear-Arithmetic Solver
for DPLL(T)" (Dutertre & de Moura, CAV 2006):

- every linear form gets a *slack variable* defined by a tableau row,
- asserting a constraint only adjusts variable bounds,
- a Bland-rule pivoting loop restores feasibility or yields a conflict.

All arithmetic is exact (:class:`fractions.Fraction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ResourceLimitError, SolverError

__all__ = ["Simplex", "SimplexResult"]


@dataclass
class SimplexResult:
    """Outcome of a :meth:`Simplex.check` call."""

    sat: bool
    #: Variable assignment (rational) when satisfiable.
    model: Dict[int, Fraction] = field(default_factory=dict)
    #: Tags of asserted bounds forming an infeasible subset when UNSAT.
    core: List[object] = field(default_factory=list)


class Simplex:
    """Incremental simplex over rationals with bound assertions.

    Variables are integer indices allocated by :meth:`new_var`.  Rows are
    added with :meth:`add_row`, defining a fresh *slack* variable equal to a
    linear combination of existing variables.  Constraints are asserted as
    upper/lower bounds on any variable; each carries an opaque tag used in
    conflict explanations.
    """

    def __init__(self, max_pivots: int = 100_000) -> None:
        self._n = 0
        self._beta: List[Fraction] = []
        self._lower: List[Optional[Fraction]] = []
        self._upper: List[Optional[Fraction]] = []
        self._lower_tag: List[object] = []
        self._upper_tag: List[object] = []
        # tableau: basic var -> {nonbasic var: coefficient}
        self._rows: Dict[int, Dict[int, Fraction]] = {}
        self._basic: Set[int] = set()
        # column index: nonbasic var -> set of basic vars whose row mentions it
        self._col: Dict[int, Set[int]] = {}
        self._max_pivots = max_pivots
        self.pivot_count = 0

    # -- construction ------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh unbounded variable with value 0."""
        idx = self._n
        self._n += 1
        self._beta.append(Fraction(0))
        self._lower.append(None)
        self._upper.append(None)
        self._lower_tag.append(None)
        self._upper_tag.append(None)
        self._col[idx] = set()
        return idx

    def add_row(self, coeffs: Dict[int, Fraction]) -> int:
        """Define a slack variable ``s = sum(coeffs)`` and return its index.

        The linear form is expressed over currently *nonbasic or basic*
        variables; basic variables are substituted by their rows so the
        tableau stays in canonical form.
        """
        slack = self.new_var()
        row: Dict[int, Fraction] = {}
        for var, coeff in coeffs.items():
            if coeff == 0:
                continue
            if var in self._basic:
                for v2, c2 in self._rows[var].items():
                    row[v2] = row.get(v2, Fraction(0)) + coeff * c2
            else:
                row[var] = row.get(var, Fraction(0)) + coeff
        row = {v: c for v, c in row.items() if c != 0}
        self._rows[slack] = row
        self._basic.add(slack)
        for v in row:
            self._col[v].add(slack)
        self._beta[slack] = sum(
            (c * self._beta[v] for v, c in row.items()), Fraction(0)
        )
        return slack

    # -- bound assertion -----------------------------------------------------

    def assert_upper(self, var: int, bound: Fraction, tag: object) -> Optional[List[object]]:
        """Assert ``var <= bound``; returns a conflict core or None."""
        lo = self._lower[var]
        if lo is not None and bound < lo:
            return [self._lower_tag[var], tag]
        up = self._upper[var]
        if up is not None and bound >= up:
            return None  # not tighter
        self._upper[var] = bound
        self._upper_tag[var] = tag
        if var not in self._basic and self._beta[var] > bound:
            self._update(var, bound)
        return None

    def assert_lower(self, var: int, bound: Fraction, tag: object) -> Optional[List[object]]:
        """Assert ``var >= bound``; returns a conflict core or None."""
        up = self._upper[var]
        if up is not None and bound > up:
            return [self._upper_tag[var], tag]
        lo = self._lower[var]
        if lo is not None and bound <= lo:
            return None
        self._lower[var] = bound
        self._lower_tag[var] = tag
        if var not in self._basic and self._beta[var] < bound:
            self._update(var, bound)
        return None

    def snapshot(self) -> Tuple[list, list, list, list]:
        """Capture bounds state for later :meth:`restore` (used by B&B)."""
        return (
            list(self._lower),
            list(self._upper),
            list(self._lower_tag),
            list(self._upper_tag),
        )

    def restore(self, snap: Tuple[list, list, list, list]) -> None:
        """Restore bounds from a snapshot (assignments stay as-is)."""
        self._lower, self._upper, self._lower_tag, self._upper_tag = (
            list(snap[0]),
            list(snap[1]),
            list(snap[2]),
            list(snap[3]),
        )

    # -- feasibility ----------------------------------------------------------

    def _update(self, var: int, value: Fraction) -> None:
        delta = value - self._beta[var]
        if delta == 0:
            return
        for basic in self._col.get(var, ()):  # basic rows using var
            self._beta[basic] += self._rows[basic][var] * delta
        self._beta[var] = value

    def _pivot_and_update(self, xi: int, xj: int, value: Fraction) -> None:
        """Pivot basic xi with nonbasic xj, then set xi's value to ``value``."""
        row = self._rows[xi]
        a_ij = row[xj]
        theta = (value - self._beta[xi]) / a_ij
        self._beta[xi] = value
        self._beta[xj] += theta
        for basic in list(self._col.get(xj, ())):
            if basic is not xi and basic != xi:
                self._beta[basic] += self._rows[basic][xj] * theta
        self._pivot(xi, xj)

    def _pivot(self, xi: int, xj: int) -> None:
        """Swap basic xi with nonbasic xj in the tableau."""
        row = self._rows.pop(xi)
        self._basic.discard(xi)
        a_ij = row.pop(xj)
        for v in row:
            self._col[v].discard(xi)
        self._col[xj].discard(xi)
        # xj = (xi - sum_{v != j} a_v v) / a_ij
        new_row: Dict[int, Fraction] = {xi: Fraction(1) / a_ij}
        for v, c in row.items():
            new_row[v] = -c / a_ij
        self._rows[xj] = new_row
        self._basic.add(xj)
        for v in new_row:
            self._col.setdefault(v, set()).add(xj)
        # substitute xj in all other rows
        for basic in list(self._col.get(xj, ())):
            if basic == xj:
                continue
            brow = self._rows[basic]
            coeff = brow.pop(xj, None)
            if coeff is None:
                continue
            self._col[xj].discard(basic)
            for v, c in new_row.items():
                old = brow.get(v, Fraction(0))
                new = old + coeff * c
                if new == 0:
                    if v in brow:
                        del brow[v]
                        self._col[v].discard(basic)
                else:
                    brow[v] = new
                    self._col[v].add(basic)

    def check(self) -> SimplexResult:
        """Restore feasibility w.r.t. all bounds, or report a conflict."""
        while True:
            self.pivot_count += 1
            if self.pivot_count > self._max_pivots:
                raise ResourceLimitError("simplex pivot budget exhausted")
            # Bland's rule: smallest violating basic variable
            xi = None
            for var in sorted(self._basic):
                lo, up = self._lower[var], self._upper[var]
                if lo is not None and self._beta[var] < lo:
                    xi = (var, True)
                    break
                if up is not None and self._beta[var] > up:
                    xi = (var, False)
                    break
            if xi is None:
                return SimplexResult(
                    sat=True, model={v: self._beta[v] for v in range(self._n)}
                )
            var, need_increase = xi
            row = self._rows[var]
            xj = None
            for v in sorted(row):
                c = row[v]
                if need_increase:
                    can = (c > 0 and self._can_increase(v)) or (
                        c < 0 and self._can_decrease(v)
                    )
                else:
                    can = (c > 0 and self._can_decrease(v)) or (
                        c < 0 and self._can_increase(v)
                    )
                if can:
                    xj = v
                    break
            if xj is None:
                core = self._explain_row(var, need_increase)
                return SimplexResult(sat=False, core=core)
            target = self._lower[var] if need_increase else self._upper[var]
            assert target is not None
            self._pivot_and_update(var, xj, target)

    def _can_increase(self, var: int) -> bool:
        up = self._upper[var]
        return up is None or self._beta[var] < up

    def _can_decrease(self, var: int) -> bool:
        lo = self._lower[var]
        return lo is None or self._beta[var] > lo

    def _explain_row(self, var: int, need_increase: bool) -> List[object]:
        """Conflict: the violated bound of ``var`` plus blocking bounds."""
        core: List[object] = []
        if need_increase:
            core.append(self._lower_tag[var])
            for v, c in self._rows[var].items():
                core.append(self._upper_tag[v] if c > 0 else self._lower_tag[v])
        else:
            core.append(self._upper_tag[var])
            for v, c in self._rows[var].items():
                core.append(self._lower_tag[v] if c > 0 else self._upper_tag[v])
        return [t for t in core if t is not None]

    # -- introspection ----------------------------------------------------------

    def value(self, var: int) -> Fraction:
        """Current assignment of ``var``."""
        return self._beta[var]

    def bounds(self, var: int) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Current (lower, upper) bounds of ``var``."""
        return self._lower[var], self._upper[var]
