"""Hash-consed term representation for the built-in SMT solver.

Terms form an immutable DAG.  Structurally identical terms are shared via a
per-:class:`TermManager` hash-consing table, so syntactic equality is object
identity and terms can be used as dictionary keys cheaply.

The term language covers exactly the fragment the paper needs: linear integer
arithmetic, boolean structure, and applications of uninterpreted functions
(theory ``T ∪ T_EUF`` in the paper's notation).

Example
-------
>>> tm = TermManager()
>>> x, y = tm.mk_var("x"), tm.mk_var("y")
>>> h = tm.mk_function("h", 1)
>>> pc = tm.mk_eq(x, tm.mk_app(h, [y]))
>>> str(pc)
'(= x (h y))'
"""

from __future__ import annotations

import itertools
from enum import Enum
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import SortError

__all__ = [
    "Sort",
    "Kind",
    "FunctionSymbol",
    "Term",
    "TermManager",
    "CanonicalQuery",
    "canonical_query",
]


class Sort(Enum):
    """The two sorts of the solver's many-sorted logic."""

    INT = "Int"
    BOOL = "Bool"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Kind(Enum):
    """Syntactic constructor of a term node."""

    CONST_INT = "const_int"
    CONST_BOOL = "const_bool"
    VAR = "var"
    APP = "app"          # uninterpreted function application
    ADD = "+"
    SUB = "-"
    MUL = "*"            # at most one non-constant factor (linear arithmetic)
    NEG = "neg"
    EQ = "="
    LE = "<="
    LT = "<"
    NOT = "not"
    AND = "and"
    OR = "or"
    IMPLIES = "=>"
    ITE = "ite"
    DISTINCT = "distinct"


#: Kinds whose children are compared as an ordered tuple; commutative kinds
#: are canonically sorted by the manager before hash-consing.
_COMMUTATIVE_KINDS = frozenset({Kind.ADD, Kind.MUL, Kind.AND, Kind.OR, Kind.EQ})

_RELATIONAL_KINDS = frozenset({Kind.EQ, Kind.LE, Kind.LT})


class FunctionSymbol:
    """An uninterpreted function symbol with a fixed arity.

    The paper uses these to model "unknown" program functions (hash,
    crypto, OS calls) during symbolic execution.  All argument and result
    sorts are ``Int``, matching the paper's integer-valued examples.
    """

    __slots__ = ("name", "arity", "_id")
    _counter = itertools.count()

    def __init__(self, name: str, arity: int) -> None:
        if arity < 1:
            raise ValueError(f"function symbol {name!r} must have arity >= 1")
        self.name = name
        self.arity = arity
        self._id = next(FunctionSymbol._counter)

    def __repr__(self) -> str:
        return f"FunctionSymbol({self.name!r}, arity={self.arity})"

    def __str__(self) -> str:
        return self.name


class Term:
    """A single hash-consed node of the term DAG.

    Do not construct directly; use :class:`TermManager` factory methods.
    Identity (``is``) coincides with structural equality for terms created
    by the same manager.
    """

    __slots__ = ("kind", "sort", "args", "value", "name", "fn", "tid", "__weakref__")

    def __init__(
        self,
        kind: Kind,
        sort: Sort,
        args: Tuple["Term", ...],
        value: Optional[object],
        name: Optional[str],
        fn: Optional[FunctionSymbol],
        tid: int,
    ) -> None:
        self.kind = kind
        self.sort = sort
        self.args = args
        self.value = value     # int for CONST_INT, bool for CONST_BOOL
        self.name = name       # variable name for VAR
        self.fn = fn           # FunctionSymbol for APP
        self.tid = tid         # manager-unique id; stable iteration order

    # -- predicates ---------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.kind in (Kind.CONST_INT, Kind.CONST_BOOL)

    @property
    def is_var(self) -> bool:
        return self.kind is Kind.VAR

    @property
    def is_app(self) -> bool:
        return self.kind is Kind.APP

    @property
    def is_atom(self) -> bool:
        """True for boolean atoms: relational terms, bool vars, bool consts."""
        if self.sort is not Sort.BOOL:
            return False
        return self.kind in _RELATIONAL_KINDS or self.kind in (
            Kind.VAR,
            Kind.CONST_BOOL,
            Kind.DISTINCT,
        )

    # -- hashing / equality -------------------------------------------

    def __hash__(self) -> int:
        return self.tid

    def __eq__(self, other: object) -> bool:
        return self is other

    # -- display -------------------------------------------------------

    def __str__(self) -> str:
        return _to_sexpr(self)

    def __repr__(self) -> str:
        return f"<Term {self!s}>"

    # -- traversal ------------------------------------------------------

    def iter_dag(self) -> Iterator["Term"]:
        """Yield every distinct subterm once, children before parents."""
        seen: Set[int] = set()
        stack: List[Tuple[Term, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node.tid in seen:
                continue
            if expanded:
                seen.add(node.tid)
                yield node
            else:
                stack.append((node, True))
                for child in node.args:
                    if child.tid not in seen:
                        stack.append((child, False))

    def free_vars(self) -> Set["Term"]:
        """Return the set of variable terms occurring in this term."""
        return {t for t in self.iter_dag() if t.is_var}

    def uf_applications(self) -> List["Term"]:
        """Return all uninterpreted-function application subterms.

        Results are ordered by term id, i.e. by creation order, which makes
        downstream processing deterministic.
        """
        apps = [t for t in self.iter_dag() if t.is_app]
        apps.sort(key=lambda t: t.tid)
        return apps

    def uf_symbols(self) -> Set[FunctionSymbol]:
        """Return the set of uninterpreted function symbols used."""
        return {t.fn for t in self.iter_dag() if t.is_app and t.fn is not None}


def _to_sexpr(term: Term) -> str:
    if term.kind is Kind.CONST_INT:
        return str(term.value)
    if term.kind is Kind.CONST_BOOL:
        return "true" if term.value else "false"
    if term.kind is Kind.VAR:
        return str(term.name)
    if term.kind is Kind.APP:
        assert term.fn is not None
        inner = " ".join(_to_sexpr(a) for a in term.args)
        return f"({term.fn.name} {inner})"
    op = term.kind.value
    inner = " ".join(_to_sexpr(a) for a in term.args)
    return f"({op} {inner})"


class TermManager:
    """Factory and hash-consing table for :class:`Term` objects.

    All terms participating in one solver query must come from the same
    manager.  Factory methods perform sort checking and light constant
    folding / canonicalization so that, e.g., ``mk_add(x, 0)`` returns ``x``
    and ``mk_eq(a, b)`` equals ``mk_eq(b, a)``.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[object, ...], Term] = {}
        self._next_id = 0
        self._vars: Dict[str, Term] = {}
        self._functions: Dict[str, FunctionSymbol] = {}
        self.true_ = self._intern(Kind.CONST_BOOL, Sort.BOOL, (), True, None, None)
        self.false_ = self._intern(Kind.CONST_BOOL, Sort.BOOL, (), False, None, None)

    # -- interning core --------------------------------------------------

    def _intern(
        self,
        kind: Kind,
        sort: Sort,
        args: Tuple[Term, ...],
        value: Optional[object],
        name: Optional[str],
        fn: Optional[FunctionSymbol],
    ) -> Term:
        key = (kind, sort, args, value, name, fn)
        found = self._table.get(key)
        if found is not None:
            return found
        term = Term(kind, sort, args, value, name, fn, self._next_id)
        self._next_id += 1
        self._table[key] = term
        return term

    @property
    def num_terms(self) -> int:
        """Number of distinct terms created so far."""
        return self._next_id

    # -- leaves -----------------------------------------------------------

    def mk_int(self, value: int) -> Term:
        """An integer constant."""
        if isinstance(value, bool) or not isinstance(value, int):
            raise SortError(f"mk_int expects a Python int, got {value!r}")
        return self._intern(Kind.CONST_INT, Sort.INT, (), value, None, None)

    def mk_bool(self, value: bool) -> Term:
        """A boolean constant (``true`` / ``false``)."""
        return self.true_ if value else self.false_

    def mk_var(self, name: str, sort: Sort = Sort.INT) -> Term:
        """A named variable.  Re-requesting a name returns the same term."""
        existing = self._vars.get(name)
        if existing is not None:
            if existing.sort is not sort:
                raise SortError(
                    f"variable {name!r} already exists with sort {existing.sort}"
                )
            return existing
        term = self._intern(Kind.VAR, sort, (), None, name, None)
        self._vars[name] = term
        return term

    def fresh_var(self, prefix: str = "_t", sort: Sort = Sort.INT) -> Term:
        """A variable with a name not used before in this manager."""
        index = len(self._vars)
        while f"{prefix}{index}" in self._vars:
            index += 1
        return self.mk_var(f"{prefix}{index}", sort)

    def mk_function(self, name: str, arity: int) -> FunctionSymbol:
        """Declare (or fetch) an uninterpreted function symbol."""
        existing = self._functions.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise SortError(
                    f"function {name!r} already declared with arity {existing.arity}"
                )
            return existing
        fn = FunctionSymbol(name, arity)
        self._functions[name] = fn
        return fn

    def mk_app(self, fn: FunctionSymbol, args: Sequence[Term]) -> Term:
        """Apply an uninterpreted function to integer arguments."""
        args = tuple(args)
        if len(args) != fn.arity:
            raise SortError(
                f"function {fn.name} has arity {fn.arity}, got {len(args)} args"
            )
        for a in args:
            if a.sort is not Sort.INT:
                raise SortError(f"argument {a} of {fn.name} is not Int")
        return self._intern(Kind.APP, Sort.INT, args, None, None, fn)

    # -- arithmetic ---------------------------------------------------------

    def _check_int(self, *terms: Term) -> None:
        for t in terms:
            if t.sort is not Sort.INT:
                raise SortError(f"expected Int term, got {t} : {t.sort}")

    def mk_add(self, *terms: Term) -> Term:
        """n-ary addition with constant folding and flattening."""
        self._check_int(*terms)
        flat: List[Term] = []
        const = 0
        for t in terms:
            parts = t.args if t.kind is Kind.ADD else (t,)
            for p in parts:
                if p.kind is Kind.CONST_INT:
                    const += p.value  # type: ignore[operator]
                else:
                    flat.append(p)
        if const != 0 or not flat:
            flat.append(self.mk_int(const))
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda t: t.tid)
        return self._intern(Kind.ADD, Sort.INT, tuple(flat), None, None, None)

    def mk_neg(self, term: Term) -> Term:
        """Arithmetic negation."""
        self._check_int(term)
        if term.kind is Kind.CONST_INT:
            return self.mk_int(-term.value)  # type: ignore[operator]
        if term.kind is Kind.NEG:
            return term.args[0]
        return self._intern(Kind.NEG, Sort.INT, (term,), None, None, None)

    def mk_sub(self, a: Term, b: Term) -> Term:
        """Binary subtraction, normalized to ``a + (-b)``."""
        return self.mk_add(a, self.mk_neg(b))

    def mk_mul(self, a: Term, b: Term) -> Term:
        """Multiplication; at least one factor must be constant (linearity).

        Non-linear products should be modelled with uninterpreted functions,
        which is exactly the paper's treatment of operations outside the
        solver's theory.
        """
        self._check_int(a, b)
        if a.kind is Kind.CONST_INT and b.kind is Kind.CONST_INT:
            return self.mk_int(a.value * b.value)  # type: ignore[operator]
        if b.kind is Kind.CONST_INT:
            a, b = b, a
        if a.kind is not Kind.CONST_INT:
            raise SortError(
                f"non-linear product ({a}) * ({b}); model it with an "
                "uninterpreted function instead"
            )
        if a.value == 0:
            return self.mk_int(0)
        if a.value == 1:
            return b
        return self._intern(Kind.MUL, Sort.INT, (a, b), None, None, None)

    # -- relations ------------------------------------------------------------

    def mk_eq(self, a: Term, b: Term) -> Term:
        """Equality (over Int or Bool operands of matching sort)."""
        if a.sort is not b.sort:
            raise SortError(f"mk_eq sort mismatch: {a} : {a.sort} vs {b} : {b.sort}")
        if a is b:
            return self.true_
        if a.is_const and b.is_const:
            return self.mk_bool(a.value == b.value)
        if a.tid > b.tid:
            a, b = b, a
        return self._intern(Kind.EQ, Sort.BOOL, (a, b), None, None, None)

    def mk_ne(self, a: Term, b: Term) -> Term:
        """Disequality, represented as ``not (= a b)``."""
        return self.mk_not(self.mk_eq(a, b))

    def mk_le(self, a: Term, b: Term) -> Term:
        """Less-than-or-equal over integers."""
        self._check_int(a, b)
        if a is b:
            return self.true_
        if a.kind is Kind.CONST_INT and b.kind is Kind.CONST_INT:
            return self.mk_bool(a.value <= b.value)  # type: ignore[operator]
        return self._intern(Kind.LE, Sort.BOOL, (a, b), None, None, None)

    def mk_lt(self, a: Term, b: Term) -> Term:
        """Strict less-than over integers."""
        self._check_int(a, b)
        if a is b:
            return self.false_
        if a.kind is Kind.CONST_INT and b.kind is Kind.CONST_INT:
            return self.mk_bool(a.value < b.value)  # type: ignore[operator]
        return self._intern(Kind.LT, Sort.BOOL, (a, b), None, None, None)

    def mk_ge(self, a: Term, b: Term) -> Term:
        """``a >= b``, normalized to ``b <= a``."""
        return self.mk_le(b, a)

    def mk_gt(self, a: Term, b: Term) -> Term:
        """``a > b``, normalized to ``b < a``."""
        return self.mk_lt(b, a)

    def mk_distinct(self, terms: Sequence[Term]) -> Term:
        """Pairwise disequality of all given integer terms."""
        terms = tuple(terms)
        self._check_int(*terms)
        if len(terms) < 2:
            return self.true_
        clauses = [
            self.mk_ne(terms[i], terms[j])
            for i in range(len(terms))
            for j in range(i + 1, len(terms))
        ]
        return self.mk_and(*clauses)

    # -- boolean structure -------------------------------------------------------

    def _check_bool(self, *terms: Term) -> None:
        for t in terms:
            if t.sort is not Sort.BOOL:
                raise SortError(f"expected Bool term, got {t} : {t.sort}")

    def mk_not(self, term: Term) -> Term:
        """Boolean negation with double-negation elimination."""
        self._check_bool(term)
        if term.kind is Kind.CONST_BOOL:
            return self.mk_bool(not term.value)
        if term.kind is Kind.NOT:
            return term.args[0]
        return self._intern(Kind.NOT, Sort.BOOL, (term,), None, None, None)

    def mk_and(self, *terms: Term) -> Term:
        """n-ary conjunction with flattening and unit elimination."""
        self._check_bool(*terms)
        flat: List[Term] = []
        seen: Set[int] = set()
        for t in terms:
            parts = t.args if t.kind is Kind.AND else (t,)
            for p in parts:
                if p is self.false_:
                    return self.false_
                if p is self.true_ or p.tid in seen:
                    continue
                seen.add(p.tid)
                flat.append(p)
        if not flat:
            return self.true_
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda t: t.tid)
        return self._intern(Kind.AND, Sort.BOOL, tuple(flat), None, None, None)

    def mk_or(self, *terms: Term) -> Term:
        """n-ary disjunction with flattening and unit elimination."""
        self._check_bool(*terms)
        flat: List[Term] = []
        seen: Set[int] = set()
        for t in terms:
            parts = t.args if t.kind is Kind.OR else (t,)
            for p in parts:
                if p is self.true_:
                    return self.true_
                if p is self.false_ or p.tid in seen:
                    continue
                seen.add(p.tid)
                flat.append(p)
        if not flat:
            return self.false_
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda t: t.tid)
        return self._intern(Kind.OR, Sort.BOOL, tuple(flat), None, None, None)

    def mk_implies(self, antecedent: Term, consequent: Term) -> Term:
        """Logical implication ``antecedent => consequent``."""
        self._check_bool(antecedent, consequent)
        if antecedent is self.true_:
            return consequent
        if antecedent is self.false_ or consequent is self.true_:
            return self.true_
        if consequent is self.false_:
            return self.mk_not(antecedent)
        return self._intern(
            Kind.IMPLIES, Sort.BOOL, (antecedent, consequent), None, None, None
        )

    def mk_ite(self, cond: Term, then_t: Term, else_t: Term) -> Term:
        """If-then-else over terms of a common sort."""
        self._check_bool(cond)
        if then_t.sort is not else_t.sort:
            raise SortError("mk_ite branches have different sorts")
        if cond is self.true_:
            return then_t
        if cond is self.false_:
            return else_t
        if then_t is else_t:
            return then_t
        return self._intern(
            Kind.ITE, then_t.sort, (cond, then_t, else_t), None, None, None
        )

    # -- substitution -----------------------------------------------------------

    def substitute(self, term: Term, mapping: Dict[Term, Term]) -> Term:
        """Simultaneously replace subterms per ``mapping`` (bottom-up).

        Keys may be any terms (typically variables or UF applications).
        The replacement is applied to the original occurrences only; newly
        created terms are not rewritten again.
        """
        cache: Dict[Term, Term] = {}

        def walk(t: Term) -> Term:
            hit = mapping.get(t)
            if hit is not None:
                return hit
            cached = cache.get(t)
            if cached is not None:
                return cached
            if not t.args:
                cache[t] = t
                return t
            new_args = tuple(walk(a) for a in t.args)
            if new_args == t.args:
                result = t
            else:
                result = self._rebuild(t, new_args)
            cache[t] = result
            return result

        return walk(term)

    def _rebuild(self, t: Term, args: Tuple[Term, ...]) -> Term:
        """Re-create a node with new children, re-running canonicalization."""
        k = t.kind
        if k is Kind.APP:
            assert t.fn is not None
            return self.mk_app(t.fn, args)
        if k is Kind.ADD:
            return self.mk_add(*args)
        if k is Kind.NEG:
            return self.mk_neg(args[0])
        if k is Kind.MUL:
            return self.mk_mul(args[0], args[1])
        if k is Kind.EQ:
            return self.mk_eq(args[0], args[1])
        if k is Kind.LE:
            return self.mk_le(args[0], args[1])
        if k is Kind.LT:
            return self.mk_lt(args[0], args[1])
        if k is Kind.NOT:
            return self.mk_not(args[0])
        if k is Kind.AND:
            return self.mk_and(*args)
        if k is Kind.OR:
            return self.mk_or(*args)
        if k is Kind.IMPLIES:
            return self.mk_implies(args[0], args[1])
        if k is Kind.ITE:
            return self.mk_ite(args[0], args[1], args[2])
        raise SortError(f"cannot rebuild term of kind {k}")

    # -- cross-manager import ---------------------------------------------------

    def import_term(self, term: Term, cache: Optional[Dict[Term, Term]] = None) -> Term:
        """Recreate a term from *another* manager inside this one.

        Variables are re-interned by name, :class:`FunctionSymbol` objects
        are shared (they are immutable and identity-keyed everywhere), and
        connectives are rebuilt through the factory methods so local
        canonicalization applies.  Passing the same ``cache`` dict across
        calls amortizes shared subterms of related formulas and guarantees
        that identical source terms map to identical local terms.
        """
        if cache is None:
            cache = {}

        # iterative bottom-up walk: children are always imported before
        # their parents, so deep conditions do not hit the recursion limit
        stack: List[Tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if node in cache:
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if child not in cache:
                        stack.append((child, False))
                continue
            if node.kind is Kind.CONST_INT:
                local = self.mk_int(node.value)  # type: ignore[arg-type]
            elif node.kind is Kind.CONST_BOOL:
                local = self.mk_bool(bool(node.value))
            elif node.kind is Kind.VAR:
                local = self.mk_var(node.name or "", node.sort)
            else:
                args = tuple(cache[a] for a in node.args)
                if node.kind is Kind.APP:
                    assert node.fn is not None
                    local = self.mk_app(node.fn, args)
                else:
                    local = self._rebuild(node, args)
            cache[node] = local
        return cache[term]

    # -- linear normal form ----------------------------------------------------

    def linearize(self, term: Term) -> Tuple[Dict[Term, Fraction], Fraction]:
        """Normalize an Int term into ``sum(coeff * atom) + constant``.

        Atoms are variables and UF applications (treated opaquely).  Raises
        :class:`SortError` on non-linear structure (which :meth:`mk_mul`
        already prevents) and on ITE nodes, which must be eliminated before
        arithmetic reasoning.
        """
        self._check_int(term)
        coeffs: Dict[Term, Fraction] = {}
        const = Fraction(0)

        def add(t: Term, scale: Fraction) -> None:
            nonlocal const
            if t.kind is Kind.CONST_INT:
                const += scale * t.value  # type: ignore[operator]
            elif t.kind is Kind.ADD:
                for a in t.args:
                    add(a, scale)
            elif t.kind is Kind.NEG:
                add(t.args[0], -scale)
            elif t.kind is Kind.MUL:
                c, v = t.args
                assert c.kind is Kind.CONST_INT
                add(v, scale * c.value)  # type: ignore[operator]
            elif t.kind in (Kind.VAR, Kind.APP):
                coeffs[t] = coeffs.get(t, Fraction(0)) + scale
            else:
                raise SortError(f"cannot linearize term of kind {t.kind}: {t}")

        add(term, Fraction(1))
        return {a: c for a, c in coeffs.items() if c != 0}, const


class CanonicalQuery:
    """Alpha-renamed canonical form of a solver query (a formula list).

    Two queries have equal ``key`` exactly when they are identical up to a
    bijective renaming of variables and function symbols.  Commutative
    arguments are already tid-sorted by the :class:`TermManager` at
    construction, so the key preserves argument order as stored — which is
    precisely the structure the solver will see.  That makes the key strong
    enough for result caching: a deterministic solver produces the *same*
    answer (modulo the recorded renaming) for any query with the same key.

    ``variables`` and ``functions`` record, in canonical-index order, the
    concrete leaves of *this* query — the translation tables used to map a
    cached model back onto the asking query's names.
    """

    __slots__ = ("key", "variables", "functions")

    def __init__(
        self,
        key: Tuple[object, ...],
        variables: Tuple[Term, ...],
        functions: Tuple[FunctionSymbol, ...],
    ) -> None:
        self.key = key
        self.variables = variables
        self.functions = functions


def canonical_query(formulas: Sequence[Term]) -> CanonicalQuery:
    """Compute the renaming-invariant canonical form of a formula list.

    Variables and function symbols are numbered by first occurrence in a
    deterministic left-to-right, children-first traversal of the formulas
    in the order given.  The resulting key is a hashable nested tuple.
    """
    var_index: Dict[Term, int] = {}
    var_order: List[Term] = []
    fn_index: Dict[FunctionSymbol, int] = {}
    fn_order: List[FunctionSymbol] = []
    memo: Dict[Term, Tuple[object, ...]] = {}

    def encode(root: Term) -> Tuple[object, ...]:
        stack: List[Tuple[Term, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in memo:
                continue
            if not expanded:
                stack.append((node, True))
                # reversed so children are encoded left-to-right
                for child in reversed(node.args):
                    if child not in memo:
                        stack.append((child, False))
                continue
            kind = node.kind
            if kind is Kind.CONST_INT:
                enc: Tuple[object, ...] = ("i", node.value)
            elif kind is Kind.CONST_BOOL:
                enc = ("b", bool(node.value))
            elif kind is Kind.VAR:
                idx = var_index.get(node)
                if idx is None:
                    idx = len(var_order)
                    var_index[node] = idx
                    var_order.append(node)
                enc = ("v", node.sort.value, idx)
            elif kind is Kind.APP:
                assert node.fn is not None
                fidx = fn_index.get(node.fn)
                if fidx is None:
                    fidx = len(fn_order)
                    fn_index[node.fn] = fidx
                    fn_order.append(node.fn)
                enc = ("a", fidx, node.fn.arity) + tuple(
                    memo[a] for a in node.args
                )
            else:
                enc = (kind.value,) + tuple(memo[a] for a in node.args)
            memo[node] = enc
        return memo[root]

    key = tuple(encode(f) for f in formulas)
    return CanonicalQuery(key, tuple(var_order), tuple(fn_order))
