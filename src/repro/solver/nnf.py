"""Negation normal form and branch enumeration for boolean terms.

The validity engine's triangular strategy extraction works over
*conjunctive branches* of a path constraint.  Raw alternate constraints
contain negations of conjunctions (``¬(A ∧ B)`` from flipping a strict
``&&`` condition), implications, and boolean if-then-else; this module
normalizes them so De Morgan'd disjuncts are enumerated properly:

- :func:`to_nnf` pushes negations down to atoms, eliminating ``=>``,
  boolean ``=`` (iff) and boolean ``ite`` along the way;
- :func:`conjunctive_branches` enumerates up to ``limit`` conjunct lists
  whose disjunction covers (a subset of) the formula — each branch is a
  sufficient condition for the original formula.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import SolverError
from .terms import Kind, Sort, Term, TermManager

__all__ = ["to_nnf", "conjunctive_branches", "atoms_of"]


def to_nnf(tm: TermManager, term: Term) -> Term:
    """Rewrite a boolean term into negation normal form.

    The result contains only AND, OR, atoms, and negated atoms;
    ``=>``, boolean ``=``/``ite`` and nested negations are compiled away.
    Integer-sorted subterms are untouched.
    """
    if term.sort is not Sort.BOOL:
        raise SolverError(f"to_nnf expects a boolean term, got {term}")
    cache: Dict[Tuple[Term, bool], Term] = {}

    def walk(t: Term, negate: bool) -> Term:
        key = (t, negate)
        hit = cache.get(key)
        if hit is not None:
            return hit
        result = _nnf_node(tm, t, negate, walk)
        cache[key] = result
        return result

    return walk(term, False)


def _nnf_node(tm: TermManager, t: Term, negate: bool, walk) -> Term:
    k = t.kind
    if k is Kind.NOT:
        return walk(t.args[0], not negate)
    if k is Kind.AND:
        parts = [walk(a, negate) for a in t.args]
        return tm.mk_or(*parts) if negate else tm.mk_and(*parts)
    if k is Kind.OR:
        parts = [walk(a, negate) for a in t.args]
        return tm.mk_and(*parts) if negate else tm.mk_or(*parts)
    if k is Kind.IMPLIES:
        a, b = t.args
        if negate:  # ¬(a ⇒ b) = a ∧ ¬b
            return tm.mk_and(walk(a, False), walk(b, True))
        return tm.mk_or(walk(a, True), walk(b, False))
    if k is Kind.EQ and t.args[0].sort is Sort.BOOL:
        a, b = t.args
        if negate:  # xor
            return tm.mk_or(
                tm.mk_and(walk(a, False), walk(b, True)),
                tm.mk_and(walk(a, True), walk(b, False)),
            )
        return tm.mk_or(
            tm.mk_and(walk(a, False), walk(b, False)),
            tm.mk_and(walk(a, True), walk(b, True)),
        )
    if k is Kind.ITE and t.sort is Sort.BOOL:
        c, a, b = t.args
        # ite(c,a,b) = (c ∧ a) ∨ (¬c ∧ b); negation handled on branches
        return tm.mk_or(
            tm.mk_and(walk(c, False), walk(a, negate)),
            tm.mk_and(walk(c, True), walk(b, negate)),
        )
    if k is Kind.CONST_BOOL:
        return tm.mk_bool(bool(t.value) != negate)
    # atoms: relational terms and boolean variables
    return tm.mk_not(t) if negate else t


def conjunctive_branches(
    tm: TermManager, term: Term, limit: int = 16
) -> List[List[Term]]:
    """Enumerate up to ``limit`` conjunct lists covering the formula.

    The input is first normalized with :func:`to_nnf`; the result's
    branches are the disjuncts of a (truncated) DNF expansion.  Each
    returned list `L` satisfies ``AND(L) ⇒ term``, so a strategy that
    validates one branch validates the whole alternate constraint.
    """
    nnf = to_nnf(tm, term)

    def split(t: Term) -> List[List[Term]]:
        if t.kind is Kind.AND:
            branches: List[List[Term]] = [[]]
            for arg in t.args:
                sub = split(arg)
                combined = []
                for b in branches:
                    for s in sub:
                        combined.append(b + s)
                        if len(combined) >= limit:
                            break
                    if len(combined) >= limit:
                        break
                branches = combined
            return branches
        if t.kind is Kind.OR:
            out: List[List[Term]] = []
            for arg in t.args:
                out.extend(split(arg))
                if len(out) >= limit:
                    break
            return out[:limit]
        return [[t]]

    return split(nnf)[:limit]


def atoms_of(term: Term) -> List[Term]:
    """All distinct boolean atoms of a formula, in term-id order."""
    seen = []
    for t in term.iter_dag():
        if t.is_atom and t.kind is not Kind.CONST_BOOL:
            seen.append(t)
    seen.sort(key=lambda t: t.tid)
    return seen
