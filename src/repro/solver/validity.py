"""Validity checking and test-strategy extraction (the paper's Section 4.2).

Higher-order test generation derives new tests from *validity proofs* of
first-order formulas of the form::

    POST(pc)  =  ∃X : A ⇒ pc

where the uninterpreted function symbols ``F`` are implicitly *universally*
quantified, ``X`` are the program's input variables, and ``A`` is the
antecedent: a conjunction of recorded input-output samples
``f(c₁,…,cₙ) = c`` (the ``IOF`` table of the paper's Figure 3).

Deciding validity of ``∀F ∃X (A ⇒ pc)`` and extracting a usable test from
the proof is done with three cooperating mechanisms, all built on the
quantifier-free :class:`~repro.solver.smt.Solver`:

**Strategy verification (the key reduction).**  A *strategy* assigns every
input variable a ground term over constants and ``F``-applications of
constants (e.g. ``y := 10, x := h(10)``).  Once ``X`` is replaced by such
terms, the remaining formula has only the universal ``F``, and::

    ∀F (A ⇒ pc[σ])   is valid   ⟺   A ∧ ¬pc[σ]   is unsatisfiable

— a quantifier-free EUF+LIA query our solver decides exactly.  Every VALID
answer this module returns is backed by such an UNSAT certificate; we never
trust a heuristic guess.

**Candidate synthesis.**  Candidates come from
  1. *sample grounding*: an SMT encoding that forces every UF application's
     arguments onto recorded sample points, so its value is fixed by ``A``
     (this generalizes the paper's §7 pre-processing trick, including hash
     collisions — the disjunction over all matching preimages);
  2. *triangular extraction*: definitional constraints ``x = f(t)`` give
     non-constant strategies such as ``x := h(10)`` whose concrete value may
     be unknown until an additional program run records the sample — the
     paper's *multi-step test generation* (Example 7);
  3. a CEGIS loop: models of ``A ∧ pc`` as constant candidates, refined
     against counterexample functions found during verification.

**Adversary search (invalidity).**  To prove INVALID we exhibit a function
interpretation consistent with ``A`` under which no input works: we try a
family of total functions (sample table + constant default, offset/injective
"fresh oracle" defaults, plus counterexample models collected during
verification) and check ``∃X pc[f_adv]`` — UNSAT for any of them proves
invalidity (paper Examples 3 and 4-without-samples).

When neither a verified strategy nor an adversary is found within budget,
the result is UNKNOWN — reported honestly, never as a guess.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from time import perf_counter

from ..errors import ResourceLimitError, SolverError, StrategyError
from ..obs.journal import current_journal
from ..obs.metrics import default_registry
from .budget import SolverBudget, use_budget
from .evalmodel import evaluate
from .session import SolverSession
from .smt import CheckResult, Model, Solver
from .terms import FunctionSymbol, Kind, Sort, Term, TermManager

__all__ = [
    "Sample",
    "SampleRequest",
    "AppValue",
    "Strategy",
    "ValidityStatus",
    "ValidityResult",
    "ValidityChecker",
]


@dataclass(frozen=True)
class Sample:
    """One recorded input-output pair ``fn(args) = value`` (paper's IOF)."""

    fn: FunctionSymbol
    args: Tuple[int, ...]
    value: int

    def __str__(self) -> str:
        inner = ",".join(map(str, self.args))
        return f"{self.fn.name}({inner})={self.value}"


@dataclass(frozen=True)
class SampleRequest:
    """A function point whose value must be learned by running the program.

    Emitted when a verified strategy assigns ``x := f(c)`` but ``f(c)`` has
    never been observed — the trigger for multi-step test generation.
    """

    fn: FunctionSymbol
    args: Tuple[int, ...]

    def __str__(self) -> str:
        inner = ",".join(map(str, self.args))
        return f"need {self.fn.name}({inner})"


@dataclass(frozen=True)
class AppValue:
    """Strategy value "``fn(args) + offset``".

    Arguments are concrete integers or *nested* :class:`AppValue` terms —
    nesting is what the paper's k-step test generation produces: the
    strategy for a 3-deep hash chain assigns ``z := h(h(5))``, resolved by
    two successive intermediate runs.  The offset admits validity proofs
    like "set x to anything other than h(10)" — witnessed by ``h(10)+1`` —
    covering disequality branches soundly.
    """

    fn: FunctionSymbol
    args: Tuple[object, ...]  # each entry: int or AppValue
    offset: int = 0

    def resolve(self, table: Dict[Tuple[FunctionSymbol, Tuple[int, ...]], int]) -> Optional[int]:
        """Evaluate against a sample table; None when a point is missing."""
        concrete_args: List[int] = []
        for a in self.args:
            if isinstance(a, AppValue):
                inner = a.resolve(table)
                if inner is None:
                    return None
                concrete_args.append(inner)
            else:
                concrete_args.append(int(a))
        value = table.get((self.fn, tuple(concrete_args)))
        return None if value is None else value + self.offset

    def innermost_requests(
        self, table: Dict[Tuple[FunctionSymbol, Tuple[int, ...]], int]
    ) -> List["SampleRequest"]:
        """The deepest unresolved points whose arguments ARE resolvable.

        These are the next samples an intermediate run can learn; outer
        points become requestable only after the inner ones resolve.
        """
        out: List[SampleRequest] = []
        concrete_args: List[int] = []
        blocked = False
        for a in self.args:
            if isinstance(a, AppValue):
                inner = a.resolve(table)
                if inner is None:
                    out.extend(a.innermost_requests(table))
                    blocked = True
                else:
                    concrete_args.append(inner)
            else:
                concrete_args.append(int(a))
        if not blocked:
            key = (self.fn, tuple(concrete_args))
            if key not in table:
                out.append(SampleRequest(self.fn, tuple(concrete_args)))
        return out

    def __str__(self) -> str:
        inner = ",".join(str(a) for a in self.args)
        suffix = ""
        if self.offset > 0:
            suffix = f"+{self.offset}"
        elif self.offset < 0:
            suffix = str(self.offset)
        return f"{self.fn.name}({inner}){suffix}"


StrategyValue = Union[int, AppValue]


@dataclass
class Strategy:
    """A test-generation strategy derived from a validity proof.

    Maps every input variable name to either a concrete integer or an
    :class:`AppValue` to be resolved against the sample store (possibly by
    running an intermediate test first).
    """

    assignments: Dict[str, StrategyValue] = field(default_factory=dict)

    def pending(self, samples: Sequence[Sample]) -> List[SampleRequest]:
        """The next sample points this strategy needs (innermost first).

        For nested applications only the currently-resolvable layer is
        reported; deeper layers become pending as samples accumulate —
        the driver of the paper's k-step generation.
        """
        table = {(s.fn, s.args): s.value for s in samples}
        out: List[SampleRequest] = []
        seen: set = set()
        for value in self.assignments.values():
            if isinstance(value, AppValue):
                for req in value.innermost_requests(table):
                    if req not in seen:
                        seen.add(req)
                        out.append(req)
        return out

    def concretize(self, samples: Sequence[Sample]) -> Dict[str, int]:
        """Resolve the strategy into concrete inputs using recorded samples.

        Raises :class:`StrategyError` if a needed sample is missing; call
        :meth:`pending` first (or drive the multi-step loop) to avoid that.
        """
        table = {(s.fn, s.args): s.value for s in samples}
        out: Dict[str, int] = {}
        for name, value in self.assignments.items():
            if isinstance(value, AppValue):
                resolved = value.resolve(table)
                if resolved is None:
                    raise StrategyError(f"unresolved sample for {value}")
                out[name] = resolved
            else:
                out[name] = value
        return out

    def __str__(self) -> str:
        parts = [f"{k} := {v}" for k, v in sorted(self.assignments.items())]
        return "[" + "; ".join(parts) + "]"


class ValidityStatus(Enum):
    VALID = "valid"
    INVALID = "invalid"
    UNKNOWN = "unknown"


@dataclass
class ValidityResult:
    """Outcome of a :meth:`ValidityChecker.check` call."""

    status: ValidityStatus
    #: A verified strategy when VALID.
    strategy: Optional[Strategy] = None
    #: A function interpretation defeating all inputs when INVALID.
    adversary: Optional[Model] = None
    #: Number of candidate strategies tried.
    candidates_tried: int = 0
    #: Human-readable note about how the verdict was reached.
    note: str = ""

    @property
    def valid(self) -> bool:
        return self.status is ValidityStatus.VALID


class ValidityChecker:
    """Decides ``∀F ∃X (A ⇒ pc)`` and extracts test strategies.

    Parameters
    ----------
    manager:
        The :class:`TermManager` that built ``pc``.
    max_candidates:
        Budget on candidate strategies tried before giving up on VALID.
    use_antecedent:
        When False, samples are ignored in verification — reproducing the
        paper's Example 4 contrast (validity *requires* the antecedent).
    budget:
        Optional :class:`~repro.solver.budget.SolverBudget` scoped over
        every solver query this check spawns; None inherits the ambient
        budget.  The directed search's degradation ladder re-runs deferred
        flips through here with escalated budgets.
    """

    def __init__(
        self,
        manager: TermManager,
        max_candidates: int = 24,
        use_antecedent: bool = True,
        enable_offsets: bool = True,
        budget: Optional[SolverBudget] = None,
    ) -> None:
        self.tm = manager
        self.max_candidates = max_candidates
        self.use_antecedent = use_antecedent
        self.budget = budget
        #: allow offset strategies (``x := h(c) + k``); disabling them
        #: recreates the expressiveness of the paper's literal §7 prototype
        #: (ablation: disequality branches become uncoverable)
        self.enable_offsets = enable_offsets

    # -- public API -----------------------------------------------------------

    def check(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample] = (),
        defaults: Optional[Dict[str, int]] = None,
    ) -> ValidityResult:
        """Decide validity of ``∃X (A ⇒ pc)`` with universal UF symbols.

        ``defaults`` optionally supplies preferred values for inputs that
        the constraint leaves unconstrained (dynamic test generation reuses
        the previous run's concrete values, per the paper's Section 2).

        Each verdict (status, candidates tried, wall time) is recorded
        into the default metrics registry and emitted as a
        ``validity_check`` event on the current journal.
        """
        registry = default_registry()
        journal = current_journal()
        if not registry.enabled and not journal.enabled:
            return self._check_budgeted(pc, input_vars, samples, defaults)
        start = perf_counter()
        result = self._check_budgeted(pc, input_vars, samples, defaults)
        elapsed = perf_counter() - start
        registry.counter("validity.checks").inc()
        registry.counter(f"validity.{result.status.value}").inc()
        registry.counter("validity.candidates_tried").inc(result.candidates_tried)
        registry.histogram("validity.check_seconds").observe(elapsed)
        journal.emit(
            "validity_check",
            status=result.status.value,
            candidates_tried=result.candidates_tried,
            note=result.note,
            strategy=str(result.strategy) if result.strategy else None,
            seconds=round(elapsed, 6),
        )
        return result

    def _check_budgeted(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample] = (),
        defaults: Optional[Dict[str, int]] = None,
    ) -> ValidityResult:
        if self.budget is None:
            return self._check(pc, input_vars, samples, defaults)
        with use_budget(self.budget):
            return self._check(pc, input_vars, samples, defaults)

    def _check(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample] = (),
        defaults: Optional[Dict[str, int]] = None,
    ) -> ValidityResult:
        tm = self.tm
        input_vars = list(input_vars)
        samples = list(samples) if self.use_antecedent else []
        antecedent = self._antecedent(samples)
        defaults = dict(defaults or {})

        if pc is tm.true_:
            strategy = Strategy(
                {v.name or "": defaults.get(v.name or "", 0) for v in input_vars}
            )
            return ValidityResult(ValidityStatus.VALID, strategy, note="trivial")
        if pc is tm.false_:
            return ValidityResult(
                ValidityStatus.INVALID, note="path constraint is false"
            )

        # One incremental session carries the antecedent through the whole
        # check: the fast-invalidity probe and every candidate verification
        # below share its assertion (and the lemmas learned refuting one
        # candidate keep pruning the next).
        session = SolverSession(tm)
        session.assert_base(antecedent)

        # Fast invalidity: if A ∧ pc has no model at all (F existential),
        # then no function consistent with A admits any input.
        if not session.check(pc).sat:
            return ValidityResult(
                ValidityStatus.INVALID,
                note="A ∧ pc unsatisfiable (no function interpretation works)",
            )

        counter_functions: List[Model] = []
        tried = 0

        for candidate, origin in self._candidates(pc, input_vars, samples, defaults,
                                                  counter_functions):
            tried += 1
            if tried > self.max_candidates:
                break
            verdict = self._verify(pc, candidate, antecedent, input_vars, session)
            if verdict is None:
                return ValidityResult(
                    ValidityStatus.VALID,
                    strategy=candidate,
                    candidates_tried=tried,
                    note=f"strategy from {origin}, verified by UNSAT of A ∧ ¬pc[σ]",
                )
            counter_functions.append(verdict)

        adversary = self._find_adversary(pc, input_vars, samples, counter_functions)
        if adversary is not None:
            return ValidityResult(
                ValidityStatus.INVALID,
                adversary=adversary,
                candidates_tried=tried,
                note="adversary function defeats every input assignment",
            )
        return ValidityResult(
            ValidityStatus.UNKNOWN,
            candidates_tried=tried,
            note="no verified strategy and no adversary within budget",
        )

    # -- antecedent ---------------------------------------------------------------

    def _antecedent(self, samples: Sequence[Sample]) -> Term:
        tm = self.tm
        conjuncts = [
            tm.mk_eq(
                tm.mk_app(s.fn, [tm.mk_int(a) for a in s.args]), tm.mk_int(s.value)
            )
            for s in samples
        ]
        return tm.mk_and(*conjuncts) if conjuncts else tm.true_

    # -- verification ----------------------------------------------------------------

    def _strategy_term(self, value: StrategyValue) -> Term:
        tm = self.tm
        if isinstance(value, AppValue):
            arg_terms = [
                self._strategy_term(a) if isinstance(a, AppValue) else tm.mk_int(a)
                for a in value.args
            ]
            app = tm.mk_app(value.fn, arg_terms)
            if value.offset:
                return tm.mk_add(app, tm.mk_int(value.offset))
            return app
        return tm.mk_int(value)

    def _verify(
        self,
        pc: Term,
        strategy: Strategy,
        antecedent: Term,
        input_vars: Sequence[Term],
        session: Optional[SolverSession] = None,
    ) -> Optional[Model]:
        """Check ``∀F (A ⇒ pc[σ])`` via UNSAT of ``A ∧ ¬pc[σ]``.

        Returns None when the strategy is a valid certificate; otherwise a
        counterexample function interpretation.  When a ``session`` holding
        the antecedent is supplied, the query is solved as a delta on it.
        """
        tm = self.tm
        mapping: Dict[Term, Term] = {}
        for v in input_vars:
            name = v.name or ""
            if name not in strategy.assignments:
                return Model()  # incomplete strategy can never be verified
            mapping[v] = self._strategy_term(strategy.assignments[name])
        grounded = tm.substitute(pc, mapping)
        if session is not None:
            result = session.check(tm.mk_not(grounded))
        else:
            solver = Solver(tm)
            solver.add(antecedent)
            result = solver.check(tm.mk_not(grounded))
        if not result.sat:
            return None
        return result.model if result.model is not None else Model()

    # -- candidate generation ----------------------------------------------------------

    def _candidates(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample],
        defaults: Dict[str, int],
        counter_functions: List[Model],
    ):
        """Yield (strategy, origin) candidates, best-first.

        The generator re-reads ``counter_functions`` between yields, so the
        CEGIS stage naturally reacts to counterexamples discovered while
        verifying earlier candidates.
        """
        yield from self._grounded_candidates(pc, input_vars, samples, defaults)
        yield from self._triangular_candidates(pc, input_vars, samples, defaults)
        yield from self._cegis_candidates(
            pc, input_vars, samples, defaults, counter_functions
        )

    # .. stage 1: sample grounding ..................................................

    def _grounded_candidates(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample],
        defaults: Dict[str, int],
    ):
        """Force every UF application onto a recorded sample point.

        Builds ``pc`` with each application ``f(t̄)`` replaced by a fresh
        variable ``v`` constrained by ``OR over samples s of f:
        (t̄ = s.args ∧ v = s.value)``.  Any model of that formula is a
        constant strategy that the antecedent alone forces to satisfy pc.
        This is the general form of the paper's §7 hash-inversion trick.
        """
        tm = self.tm
        apps = pc.uf_applications()
        if not apps:
            # No imprecision at all: plain satisfiability is test generation.
            solver = Solver(tm)
            result = solver.check(pc)
            if result.sat and result.model is not None:
                yield self._model_to_strategy(
                    result.model, input_vars, defaults
                ), "plain satisfiability (no UF applications)"
            return
        by_fn: Dict[FunctionSymbol, List[Sample]] = {}
        for s in samples:
            by_fn.setdefault(s.fn, []).append(s)

        mapping: Dict[Term, Term] = {}
        selector_constraints: List[Term] = []
        feasible = True
        for app in apps:
            assert app.fn is not None
            fn_samples = by_fn.get(app.fn, [])
            if not fn_samples:
                feasible = False
                break
            fresh = tm.fresh_var(f"_gnd_{app.fn.name}_")
            rewritten_args = [tm.substitute(a, mapping) for a in app.args]
            choices = []
            for s in fn_samples:
                arg_eqs = [
                    tm.mk_eq(ra, tm.mk_int(sa))
                    for ra, sa in zip(rewritten_args, s.args)
                ]
                choices.append(
                    tm.mk_and(*(arg_eqs + [tm.mk_eq(fresh, tm.mk_int(s.value))]))
                )
            selector_constraints.append(tm.mk_or(*choices))
            mapping[app] = fresh
        if not feasible:
            return
        grounded_pc = tm.substitute(pc, mapping)
        solver = Solver(tm)
        solver.add(grounded_pc, *selector_constraints)
        blocked: List[Term] = []
        for _ in range(4):  # a few distinct groundings
            result = solver.check(*blocked)
            if not result.sat or result.model is None:
                return
            yield self._model_to_strategy(
                result.model, input_vars, defaults
            ), "sample grounding"
            diff = [
                tm.mk_ne(v, tm.mk_int(result.model.int_value(v.name or "")))
                for v in input_vars
            ]
            if not diff:
                return
            blocked.append(tm.mk_or(*diff))

    # .. stage 2: triangular / definitional extraction ...............................

    def _triangular_candidates(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample],
        defaults: Dict[str, int],
    ):
        """Extract strategies of shape ``y := c; x := f(y-value)``.

        Works over each conjunctive branch of ``pc``: repeatedly propagate
        definitional equalities whose right-hand side becomes ground,
        allowing UF applications at ground points (which may be unsampled —
        that is exactly multi-step test generation).  Remaining variables are
        filled by solving the residual constraint.
        """
        for conjuncts in self._conjunctive_branches(pc, limit=8):
            candidate = self._triangular_from_conjuncts(
                conjuncts, input_vars, samples, defaults
            )
            if candidate is not None:
                yield candidate, "triangular extraction"

    def _conjunctive_branches(
        self, pc: Term, limit: int
    ) -> List[List[Term]]:
        """Split ``pc`` into up to ``limit`` conjunct lists.

        Delegates to the NNF machinery so that De Morgan'd negations of
        conjunctions (e.g. flipping a strict ``&&`` condition) enumerate
        into separate branches.
        """
        from .nnf import conjunctive_branches

        return conjunctive_branches(self.tm, pc, limit)

    def _triangular_from_conjuncts(
        self,
        conjuncts: List[Term],
        input_vars: Sequence[Term],
        samples: Sequence[Sample],
        defaults: Dict[str, int],
    ) -> Optional[Strategy]:
        tm = self.tm
        sample_table = {(s.fn, s.args): s.value for s in samples}
        sigma: Dict[Term, StrategyValue] = {}
        input_set = {v for v in input_vars}

        def ground_value(t: Term) -> Optional[StrategyValue]:
            """Evaluate ``t`` under sigma to an int or a ground AppValue."""
            if t.kind is Kind.CONST_INT:
                return int(t.value)  # type: ignore[arg-type]
            if t.is_var:
                got = sigma.get(t)
                return got
            if t.kind is Kind.ADD:
                total = 0
                app: Optional[AppValue] = None
                for a in t.args:
                    v = ground_value(a)
                    if isinstance(v, AppValue):
                        if app is not None:
                            return None  # two opaque applications: not ground
                        app = v
                    elif isinstance(v, int):
                        total += v
                    else:
                        return None
                if app is not None:
                    return AppValue(app.fn, app.args, app.offset + total)
                return total
            if t.kind is Kind.NEG:
                v = ground_value(t.args[0])
                return -v if isinstance(v, int) else None
            if t.kind is Kind.MUL:
                c = ground_value(t.args[0])
                v = ground_value(t.args[1])
                if isinstance(c, int) and isinstance(v, int):
                    return c * v
                return None
            if t.is_app:
                assert t.fn is not None
                arg_vals: List[object] = []
                nested = False
                for a in t.args:
                    v = ground_value(a)
                    if isinstance(v, AppValue):
                        # prefer a recorded value; otherwise keep the
                        # nested application — multi-step will learn it
                        resolved = v.resolve(sample_table)
                        if resolved is not None:
                            v = resolved
                        else:
                            nested = True
                    if not isinstance(v, (int, AppValue)):
                        return None
                    arg_vals.append(v)
                if not nested:
                    key = (t.fn, tuple(int(a) for a in arg_vals))
                    if key in sample_table:
                        return sample_table[key]
                return AppValue(t.fn, tuple(arg_vals))
            return None

        # pass 1: propagate definitional equalities to fixpoint
        progress = True
        rounds = 0
        while progress and rounds < 50:
            progress = False
            rounds += 1
            for c in conjuncts:
                if c.kind is not Kind.EQ:
                    continue
                lhs, rhs = c.args
                for a, b in ((lhs, rhs), (rhs, lhs)):
                    if a.is_var and a in input_set and a not in sigma:
                        value = ground_value(b)
                        if value is not None:
                            sigma[a] = value
                            progress = True

        # pass 1a: disequality witnesses — a branch path often excludes a
        # whole SET of constants for one variable (e.g. op ∉ {0, 1, 2} in a
        # dispatcher); "any value outside the set" is a valid ∀-strategy.
        # Prefer the previous concrete value, else the smallest natural not
        # excluded.  Disequality against an unknown-function value t is
        # witnessed by t + 1 (an offset AppValue; multi-step learns the
        # sample, then the final input is sample + 1).
        exclusions: Dict[Term, Set[int]] = {}
        app_diseqs: List[Tuple[Term, AppValue]] = []
        for c in conjuncts:
            if c.kind is not Kind.NOT or c.args[0].kind is not Kind.EQ:
                continue
            lhs, rhs = c.args[0].args
            for a, b in ((lhs, rhs), (rhs, lhs)):
                if a.is_var and a in input_set and a not in sigma:
                    value = ground_value(b)
                    if isinstance(value, int):
                        exclusions.setdefault(a, set()).add(value)
                    elif isinstance(value, AppValue):
                        app_diseqs.append((a, value))
        for var, excluded in exclusions.items():
            if var in sigma:
                continue
            preferred = defaults.get(var.name or "", 0)
            if preferred not in excluded:
                sigma[var] = preferred
            else:
                candidate = 0
                while candidate in excluded:
                    candidate += 1
                sigma[var] = candidate
        if self.enable_offsets:
            for var, value in app_diseqs:
                if var not in sigma:
                    sigma[var] = AppValue(
                        value.fn, value.args, value.offset + 1
                    )

        # pass 1b: definitional RHS blocked only by *unconstrained* inputs:
        # give those inputs their previous concrete values (dynamic test
        # generation reuses old values for unconstrained inputs, paper §2)
        # and retry the grounding; roll back if it still fails
        progress = True
        rounds = 0
        while progress and rounds < 50:
            progress = False
            rounds += 1
            for c in conjuncts:
                if c.kind is not Kind.EQ:
                    continue
                lhs, rhs = c.args
                for a, b in ((lhs, rhs), (rhs, lhs)):
                    if not (a.is_var and a in input_set and a not in sigma):
                        continue
                    blockers = [
                        v
                        for v in b.free_vars()
                        if v in input_set and v not in sigma
                    ]
                    if not blockers:
                        continue
                    for v in blockers:
                        sigma[v] = defaults.get(v.name or "", 0)
                    value = ground_value(b)
                    if value is not None:
                        sigma[a] = value
                        progress = True
                    else:
                        for v in blockers:
                            del sigma[v]

        # pass 2: EUF unification for f(x)=f(y): make both sides ground by
        # copying an assigned argument or defaulting both to equal values.
        for c in conjuncts:
            if c.kind is not Kind.EQ:
                continue
            lhs, rhs = c.args
            if (
                lhs.is_app
                and rhs.is_app
                and lhs.fn is rhs.fn
                and lhs.fn is not None
            ):
                for x, y in zip(lhs.args, rhs.args):
                    if x.is_var and y.is_var and x in input_set and y in input_set:
                        if x in sigma and y not in sigma and isinstance(sigma[x], int):
                            sigma[y] = sigma[x]
                        elif y in sigma and x not in sigma and isinstance(sigma[y], int):
                            sigma[x] = sigma[y]
                        elif x not in sigma and y not in sigma:
                            shared = defaults.get(x.name or "", 0)
                            sigma[x] = shared
                            sigma[y] = shared

        # pass 3: fill remaining vars by solving the residual constraint
        remaining = [v for v in input_vars if v not in sigma]
        if remaining:
            mapping = {
                v: self._strategy_term(val) for v, val in sigma.items()
            }
            residual = tm.substitute(tm.mk_and(*conjuncts), mapping)
            solver = Solver(tm)
            solver.add(self._antecedent(samples))
            result = solver.check(residual)
            if not result.sat or result.model is None:
                return None
            for v in remaining:
                name = v.name or ""
                if name in result.model.ints:
                    sigma[v] = result.model.ints[name]
                else:
                    sigma[v] = defaults.get(name, 0)

        return Strategy({(v.name or ""): val for v, val in sigma.items()})

    # .. stage 3: CEGIS over counterexample functions ...............................

    def _cegis_candidates(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample],
        defaults: Dict[str, int],
        counter_functions: List[Model],
    ):
        """Constant candidates from models of ``A ∧ pc``, hardened against
        every counterexample function collected so far."""
        tm = self.tm
        for _ in range(8):
            solver = Solver(tm)
            solver.add(self._antecedent(samples))
            solver.add(pc)
            for cex in counter_functions:
                solver.add(self._pc_under_function(pc, cex))
            result = solver.check()
            if not result.sat or result.model is None:
                return
            yield self._model_to_strategy(
                result.model, input_vars, defaults
            ), "CEGIS"
            # force a different input vector next round
            diff = [
                tm.mk_ne(v, tm.mk_int(result.model.int_value(v.name or "")))
                for v in input_vars
            ]
            if not diff:
                return
            solver.add(tm.mk_or(*diff))
            # note: solver is rebuilt each loop; the blocking happens via
            # counter_functions growth and the diff constraint below
            pc = tm.mk_and(pc, tm.mk_or(*diff))

    def _pc_under_function(self, pc: Term, interp: Model) -> Term:
        """Rewrite ``pc`` replacing UF applications by finite-table ITEs.

        Encodes "pc must hold when F behaves like ``interp``" — used to rule
        out candidates already defeated by a discovered counterexample.
        """
        tm = self.tm
        apps = pc.uf_applications()
        mapping: Dict[Term, Term] = {}
        for app in apps:
            assert app.fn is not None
            table = interp.functions.get(app.fn, {})
            rewritten_args = [tm.substitute(a, mapping) for a in app.args]
            expr: Term = tm.mk_int(interp.default)
            for args, value in sorted(table.items()):
                cond = tm.mk_and(
                    *[
                        tm.mk_eq(ra, tm.mk_int(av))
                        for ra, av in zip(rewritten_args, args)
                    ]
                )
                expr = tm.mk_ite(cond, tm.mk_int(value), expr)
            mapping[app] = expr
        return tm.substitute(pc, mapping)

    # -- adversaries ------------------------------------------------------------------

    def _find_adversary(
        self,
        pc: Term,
        input_vars: Sequence[Term],
        samples: Sequence[Sample],
        counter_functions: List[Model],
    ) -> Optional[Model]:
        """Look for a function interpretation under which no input works."""
        tm = self.tm
        fns = sorted(pc.uf_symbols(), key=lambda f: f.name)
        if not fns:
            # UF-free: invalid iff pc itself unsatisfiable
            solver = Solver(tm)
            return Model() if not solver.check(pc).sat else None

        constants = self._interesting_constants(pc)
        fresh_base = 7_777_777
        candidates: List[Model] = []
        for default in sorted(constants | {0, 1, fresh_base}):
            candidates.append(self._table_adversary(fns, samples, default))
        candidates.extend(
            self._offset_adversaries(fns, samples, fresh_base)
        )
        candidates.extend(counter_functions)

        for adversary in candidates:
            if not self._consistent_with_samples(adversary, samples):
                continue
            grounded = self._pc_under_function_general(pc, adversary)
            solver = Solver(tm)
            if not solver.check(grounded).sat:
                return adversary
        return None

    def _table_adversary(
        self, fns: Sequence[FunctionSymbol], samples: Sequence[Sample], default: int
    ) -> Model:
        model = Model(default=default)
        for s in samples:
            model.functions.setdefault(s.fn, {})[s.args] = s.value
        for fn in fns:
            model.functions.setdefault(fn, {})
        return model

    def _offset_adversaries(
        self, fns: Sequence[FunctionSymbol], samples: Sequence[Sample], base: int
    ) -> List[Model]:
        """Injective 'fresh oracle' adversaries: f(x̄) = base + sum(x̄).

        Encoded via the ``offset`` marker understood by
        :meth:`_pc_under_function_general`; sampled points keep their
        recorded values.
        """
        out = []
        for sign in (1, -1):
            model = Model(default=base)
            model.bools["__offset__"] = True
            model.ints["__offset_sign__"] = sign
            for s in samples:
                model.functions.setdefault(s.fn, {})[s.args] = s.value
            for fn in fns:
                model.functions.setdefault(fn, {})
            out.append(model)
        return out

    def _pc_under_function_general(self, pc: Term, adversary: Model) -> Term:
        """Like :meth:`_pc_under_function` but supporting offset adversaries."""
        tm = self.tm
        if not adversary.bools.get("__offset__"):
            return self._pc_under_function(pc, adversary)
        sign = adversary.ints.get("__offset_sign__", 1)
        base = adversary.default
        apps = pc.uf_applications()
        mapping: Dict[Term, Term] = {}
        for app in apps:
            assert app.fn is not None
            rewritten_args = [tm.substitute(a, mapping) for a in app.args]
            acc: Term = tm.mk_int(base)
            for ra in rewritten_args:
                acc = tm.mk_add(acc, tm.mk_mul(tm.mk_int(sign), ra))
            expr = acc
            table = adversary.functions.get(app.fn, {})
            for args, value in sorted(table.items()):
                cond = tm.mk_and(
                    *[
                        tm.mk_eq(ra, tm.mk_int(av))
                        for ra, av in zip(rewritten_args, args)
                    ]
                )
                expr = tm.mk_ite(cond, tm.mk_int(value), expr)
            mapping[app] = expr
        return tm.substitute(pc, mapping)

    def _consistent_with_samples(
        self, adversary: Model, samples: Sequence[Sample]
    ) -> bool:
        for s in samples:
            table = adversary.functions.get(s.fn, {})
            if table.get(s.args, s.value) != s.value:
                return False
            if s.args not in table:
                # default would override the sample: the table adversaries
                # always include samples, so this only guards custom models
                return False
        return True

    # -- helpers ---------------------------------------------------------------------

    def _interesting_constants(self, pc: Term) -> Set[int]:
        out: Set[int] = set()
        for t in pc.iter_dag():
            if t.kind is Kind.CONST_INT:
                out.add(int(t.value))  # type: ignore[arg-type]
        return out

    def _model_to_strategy(
        self,
        model: Model,
        input_vars: Sequence[Term],
        defaults: Dict[str, int],
    ) -> Strategy:
        assignments: Dict[str, StrategyValue] = {}
        for v in input_vars:
            name = v.name or ""
            if name in model.ints:
                assignments[name] = model.ints[name]
            else:
                assignments[name] = defaults.get(name, 0)
        return Strategy(assignments)
