"""Incremental solver sessions: one SAT solver reused across related queries.

The from-scratch :class:`~repro.solver.smt.Solver` re-encodes every query,
which is robust but wasteful for the directed search: sibling branch flips
share almost their entire path-constraint prefix, and the retention loop in
the quantifier-free backend re-solves the same alternate constraint under a
handful of different pins.  A :class:`SolverSession` keeps the CDCL solver,
the Tseitin encoding, the integer-ITE eliminations and the Ackermann
reduction alive across checks, so each new query only pays for its delta —
and theory lemmas learned by earlier queries keep pruning later ones.

Scoping uses the standard activation-literal technique: each pushed frame
gets a fresh SAT variable ``act`` and all its root clauses are guarded as
``act -> lit``.  While the frame is live, ``act`` is passed to the SAT
solver as an assumption; popping the frame asserts the unit ``-act``, which
permanently satisfies its guard clauses.  Auxiliary constraints produced by
rewriting — integer-ITE side conditions and Ackermann functional-consistency
constraints — are owned by the frame whose formula introduced them, and the
session's rewrite caches are evicted on pop, so the *live* problem handed to
the theory solver always has the same size as a from-scratch encoding of the
live assertions (a long-running session does not accrete theory atoms).
What does survive pops: Tseitin definitions (pure definitions, globally
satisfiable) and theory-conflict lemmas (valid facts about arithmetic) —
that retention is the point of the exercise.

Because the answer to an incremental check depends on session history
(learned lemmas steer which model comes back first), sessions are *not*
routed through the normalized query cache in :mod:`repro.solver.cache`;
only stateless :class:`~repro.solver.smt.Solver` checks are.  See
``docs/PERFORMANCE.md`` for the determinism argument.

Session activity is counted in the default metrics registry as
``solver.session.push`` / ``solver.session.pop`` / ``solver.session.checks``
plus the ``solver.session.reuse_depth`` histogram maintained by
:class:`PrefixSession`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ResourceLimitError, SolverError
from ..faults import current_fault_plan
from ..obs.journal import current_journal
from ..obs.metrics import default_registry
from .budget import current_budget
from .cnf import CnfConverter
from .sat import SatSolver
from .smt import CheckResult, Model, check_theory
from .terms import FunctionSymbol, Kind, Sort, Term, TermManager

__all__ = ["SolverSession", "PrefixSession"]


def _theory_atoms(term: Term) -> Set[Term]:
    """Theory atoms of ``term`` as the CNF encoder would register them."""
    out: Set[Term] = set()
    for t in term.iter_dag():
        if not t.is_atom:
            continue
        if t.kind in (Kind.VAR, Kind.CONST_BOOL):
            continue
        if t.kind is Kind.EQ and t.args[0].sort is Sort.BOOL:
            continue  # boolean iff, handled propositionally
        out.add(t)
    return out


class _Frame:
    """Formulas asserted at one stack depth plus their encoding artifacts.

    ``act`` is the frame's activation literal (0 for the unguarded base
    frame).  ``original`` keeps the formulas as asserted (for model
    verification), ``flat`` their ITE-free rewrites (for model variable
    collection), ``atoms`` / ``apps`` what this frame contributes to the
    *live* sets consulted by the lazy theory loop, and ``ite_keys`` /
    ``app_keys`` which session-cache entries this frame owns — evicted when
    the frame is popped so a reappearing subterm is re-registered against a
    live definition.
    """

    __slots__ = ("act", "original", "flat", "atoms", "apps", "ite_keys", "app_keys")

    def __init__(self, act: int) -> None:
        self.act = act
        self.original: List[Term] = []
        self.flat: List[Term] = []
        self.atoms: Set[Term] = set()
        self.apps: Set[Term] = set()
        self.ite_keys: List[Term] = []
        self.app_keys: List[Term] = []


class SolverSession:
    """An incremental assertion-stack view over one persistent SAT solver.

    Usage::

        session = SolverSession(tm)
        session.assert_base(prefix_formula)      # survives forever
        session.push()
        session.assert_term(branch_negation)     # guarded by this frame
        result = session.check(extra_pin)        # pin solved as a delta
        session.pop()                            # frame retired, lemmas kept

    Base assertions are only allowed at depth 0 (a base formula added above
    a live scope could capture that scope's rewrite definitions, which die
    with it).  Unlike :class:`~repro.solver.smt.Solver`, answers may depend
    on what was solved earlier in the session (learned lemmas bias model
    search), so results are reproducible only when the sequence of session
    operations is itself reproducible.
    """

    def __init__(
        self,
        manager: Optional[TermManager] = None,
        max_iterations: Optional[int] = None,
        max_conflicts: Optional[int] = None,
        verify_models: bool = True,
    ) -> None:
        budget = current_budget()
        if max_iterations is None:
            max_iterations = budget.max_iterations
        if max_conflicts is None:
            max_conflicts = budget.max_conflicts
        self.tm = manager if manager is not None else TermManager()
        # max_conflicts is a whole-session budget: SatSolver counts
        # conflicts cumulatively, which bounds runaway sessions too.
        self._sat = SatSolver(max_conflicts=max_conflicts)
        self._cnf = CnfConverter(self.tm, self._sat)
        self._base = _Frame(0)
        self._scopes: List[_Frame] = []
        self._max_iterations = max_iterations
        self._verify_models = verify_models
        # frame-owned rewriting state: integer-ITE elimination cache and the
        # Ackermann app -> fresh-variable mapping with per-symbol history
        self._ite_cache: Dict[Term, Term] = {}
        self._app_mapping: Dict[Term, Term] = {}
        self._app_args: Dict[Term, Tuple[Term, ...]] = {}
        self._apps_by_fn: Dict[FunctionSymbol, List[Term]] = {}
        self.last_iterations = 0
        self.pushes = 0
        self.pops = 0
        self.checks = 0

    # -- assertion stack --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of live scopes above the base frame."""
        return len(self._scopes)

    def push(self) -> None:
        """Open a scope guarded by a fresh activation literal."""
        self._scopes.append(_Frame(self._sat.new_var()))
        self.pushes += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter("solver.session.push").inc()

    def pop(self) -> None:
        """Retire the innermost scope (its guard is disabled permanently)."""
        if not self._scopes:
            raise SolverError("pop without matching push")
        self._retire(self._scopes.pop())
        self.pops += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter("solver.session.pop").inc()

    def _retire(self, frame: _Frame) -> None:
        self._sat.add_clause([-frame.act])
        for key in frame.ite_keys:
            self._ite_cache.pop(key, None)
        for app in frame.app_keys:
            self._app_mapping.pop(app, None)
            self._app_args.pop(app, None)
            assert app.fn is not None
            peers = self._apps_by_fn.get(app.fn)
            if peers is not None:
                peers.remove(app)

    def assert_term(self, *formulas: Term) -> None:
        """Assert formulas into the innermost scope (or the base frame)."""
        frame = self._scopes[-1] if self._scopes else self._base
        for f in formulas:
            self._assert_into(frame, f)

    def assert_base(self, *formulas: Term) -> None:
        """Assert formulas unguarded; only legal before any scope is open."""
        if self._scopes:
            raise SolverError("assert_base under a live scope")
        for f in formulas:
            self._assert_into(self._base, f)

    # -- encoding ---------------------------------------------------------------

    def _assert_into(self, frame: _Frame, formula: Term) -> None:
        lit = self._prepare(frame, formula)
        if frame.act:
            self._sat.add_clause([-frame.act, lit])
        else:
            self._sat.add_clause([lit])

    def _prepare(self, frame: _Frame, formula: Term) -> int:
        """Rewrite + encode ``formula``; record artifacts; return root literal."""
        if formula.sort is not Sort.BOOL:
            raise SolverError(f"cannot assert non-boolean term {formula}")
        rewritten, sides = self._eliminate_ites(frame, formula)
        for side in sides:
            self._assert_into(frame, side)
        pure = self._ackermannize(frame, rewritten)
        frame.original.append(formula)
        frame.flat.append(rewritten)
        frame.atoms |= _theory_atoms(pure)
        frame.apps |= {t for t in rewritten.iter_dag() if t.is_app}
        return self._cnf.literal_for(pure)

    def _eliminate_ites(self, frame: _Frame, term: Term) -> Tuple[Term, List[Term]]:
        """Integer-ITE elimination sharing one definition cache session-wide.

        Only non-identity rewrites are owned by ``frame`` (and evicted with
        it): an identity entry means the subtree is ITE-free, which stays
        true forever.
        """
        sides: List[Term] = []
        cache = self._ite_cache
        tm = self.tm

        def walk(t: Term) -> Term:
            cached = cache.get(t)
            if cached is not None:
                return cached
            if not t.args:
                cache[t] = t
                return t
            new_args = tuple(walk(a) for a in t.args)
            if t.kind is Kind.ITE and t.sort is Sort.INT:
                cond, then_t, else_t = new_args
                fresh = tm.fresh_var("_ite")
                sides.append(tm.mk_implies(cond, tm.mk_eq(fresh, then_t)))
                sides.append(tm.mk_implies(tm.mk_not(cond), tm.mk_eq(fresh, else_t)))
                result = fresh
            elif new_args == t.args:
                result = t
            else:
                result = tm._rebuild(t, new_args)
            cache[t] = result
            if result is not t:
                frame.ite_keys.append(t)
            return result

        return walk(term), sides

    def _ackermannize(self, frame: _Frame, term: Term) -> Term:
        """Register new UF applications incrementally and purify ``term``.

        New applications get fresh variables plus functional-consistency
        constraints against every live application of the same symbol; the
        constraints are owned by ``frame`` (the newer of the two frames
        involved in any pair), so they die no earlier than either endpoint.
        """
        tm = self.tm
        apps = sorted(
            (t for t in term.iter_dag() if t.is_app and t not in self._app_mapping),
            key=lambda t: t.tid,
        )
        constraints: List[Term] = []
        for app in apps:
            assert app.fn is not None
            new_args = tuple(tm.substitute(a, self._app_mapping) for a in app.args)
            var = tm.fresh_var(f"_app_{app.fn.name}_")
            for other in self._apps_by_fn.get(app.fn, []):
                other_args = self._app_args[other]
                if any(
                    x is not y and x.is_const and y.is_const
                    for x, y in zip(new_args, other_args)
                ):
                    # Distinct constants in some position: the antecedent of
                    # the consistency implication folds to false, so the
                    # constraint is vacuously true.  Sample antecedents pair
                    # mostly constant-argument applications, making this the
                    # common case by far.
                    continue
                arg_eqs = [tm.mk_eq(x, y) for x, y in zip(new_args, other_args)]
                constraints.append(
                    tm.mk_implies(
                        tm.mk_and(*arg_eqs),
                        tm.mk_eq(var, self._app_mapping[other]),
                    )
                )
            self._app_mapping[app] = var
            self._app_args[app] = new_args
            self._apps_by_fn.setdefault(app.fn, []).append(app)
            frame.app_keys.append(app)
        for c in constraints:
            self._assert_into(frame, c)
        return tm.substitute(term, self._app_mapping)

    # -- solving ----------------------------------------------------------------

    def check(self, *extra: Term) -> CheckResult:
        """Decide base + live scopes + ``extra``.

        Extras live in an ephemeral guarded frame that exists only for this
        check, so they are deltas: nothing they introduce outlives the call
        except Tseitin definitions and learned lemmas.
        """
        self.checks += 1
        registry = default_registry()
        journal = current_journal()
        if not registry.enabled and not journal.enabled:
            return self._check(extra)
        start = perf_counter()
        result = self._check(extra)
        elapsed = perf_counter() - start
        registry.counter("smt.checks").inc()
        registry.counter("smt.sat" if result.sat else "smt.unsat").inc()
        registry.counter("smt.lazy_iterations").inc(result.iterations)
        registry.histogram("smt.check_seconds").observe(elapsed)
        registry.counter("solver.session.checks").inc()
        journal.emit(
            "solver_query",
            solver="smt-session",
            sat=result.sat,
            iterations=result.iterations,
            assertions=len(self._base.original)
            + sum(len(s.original) for s in self._scopes)
            + len(extra),
            seconds=round(elapsed, 6),
        )
        return result

    def _check(self, extra: Tuple[Term, ...]) -> CheckResult:
        # fault-injection site: forced exhaustion before any state mutates,
        # so a degraded/retried query sees a clean session
        current_fault_plan().fire("solver")
        ext = _Frame(self._sat.new_var()) if extra else None
        registry = default_registry()
        try:
            if ext is not None:
                if registry.enabled:
                    # ephemeral extras are assertion-stack scopes too
                    registry.counter("solver.session.push").inc()
                for f in extra:
                    self._assert_into(ext, f)
            return self._solve(ext)
        finally:
            if ext is not None:
                self._retire(ext)
                if registry.enabled:
                    registry.counter("solver.session.pop").inc()

    def _solve(self, ext: Optional[_Frame]) -> CheckResult:
        live = [self._base] + self._scopes + ([ext] if ext is not None else [])
        if not any(f.original for f in live):
            return CheckResult(sat=True, model=Model())

        assumptions = [f.act for f in live if f.act]
        live_atoms: Set[Term] = set()
        live_apps: Set[Term] = set()
        flat: List[Term] = []
        originals: List[Term] = []
        for f in live:
            live_atoms |= f.atoms
            live_apps |= f.apps
            flat.extend(f.flat)
            originals.extend(f.original)

        iterations = 0
        while True:
            iterations += 1
            if iterations > self._max_iterations:
                raise ResourceLimitError(
                    f"lazy SMT loop exceeded {self._max_iterations} iterations"
                )
            sat_result = self._sat.solve(assumptions)
            if not sat_result.sat:
                self.last_iterations = iterations
                return CheckResult(sat=False, iterations=iterations)

            # restrict the theory conjunction to atoms a live assertion can
            # actually observe — retired scopes still own SAT variables, but
            # their unconstrained values must not burden (or refute) the model
            literals = self._cnf.model_literals(sat_result.model)
            theory_lits = [
                (atom, pol)
                for atom, pol in literals
                if atom.kind is not Kind.VAR and atom in live_atoms
            ]
            ok, core, int_model = check_theory(self.tm, theory_lits)
            if ok:
                model = self._build_model(
                    sat_result.model, int_model, live_apps, flat, originals
                )
                self.last_iterations = iterations
                return CheckResult(sat=True, model=model, iterations=iterations)

            # a theory-conflict core is a lemma about arithmetic, valid in
            # every scope: assert it unguarded so later checks inherit it
            blocking: List[int] = []
            for atom, pol in core:
                lit = self._cnf.literal_for(atom)
                blocking.append(-lit if pol else lit)
            if not blocking:
                raise SolverError("theory conflict produced an empty core")
            self._sat.add_clause(blocking)

    # -- model construction -----------------------------------------------------

    def _build_model(
        self,
        sat_model: Dict[int, bool],
        int_model: Dict[str, int],
        live_apps: Set[Term],
        flat: List[Term],
        originals: List[Term],
    ) -> Model:
        from .evalmodel import evaluate  # local import to avoid a cycle

        model = Model()
        for f in flat:
            for t in f.iter_dag():
                if t.is_var and t.sort is Sort.INT and t.name is not None:
                    model.ints.setdefault(t.name, int_model.get(t.name, 0))
        for name, value in int_model.items():
            model.ints.setdefault(name, value)
        for atom, svar in self._cnf.atoms.items():
            if atom.kind is Kind.VAR and atom.sort is Sort.BOOL and svar in sat_model:
                model.bools[atom.name or f"b{atom.tid}"] = sat_model[svar]
        for app in sorted(live_apps, key=lambda t: t.tid):
            assert app.fn is not None
            var = self._app_mapping[app]
            arg_values = tuple(int(evaluate(a, model)) for a in app.args)
            value = model.ints.get(var.name or "", 0)
            table = model.functions.setdefault(app.fn, {})
            existing = table.get(arg_values)
            if existing is not None and existing != value:
                raise SolverError(
                    f"inconsistent UF table for {app.fn.name}{arg_values}: "
                    f"{existing} vs {value} (Ackermann constraints violated)"
                )
            table[arg_values] = value

        # verify while helper variables (_ite/_app_ definitions) are still in
        # the model — session originals include the side conditions that
        # mention them, unlike the stateless solver's user-only assertions
        if self._verify_models:
            for f in originals:
                value = evaluate(f, model)
                if value is not True:
                    raise SolverError(
                        f"model verification failed: {f} evaluates to {value} "
                        f"under {model}"
                    )
        for name in list(model.ints):
            if name.startswith(("_app_", "_ite", "_t")):
                del model.ints[name]
        return model


class PrefixSession:
    """Path-constraint prefix reuse on top of a :class:`SolverSession`.

    A directed search asks one question per branch flip: *prefix conditions
    up to i, plus the negation of condition i*.  Consecutive questions share
    long prefixes, so this wrapper keeps the asserted conditions as a stack,
    pops only what differs from the previous question, and pushes the rest.
    The retained depth is observed as ``solver.session.reuse_depth``.

    Terms are hash-consed per manager, so prefix comparison is by identity.
    """

    def __init__(self, manager: TermManager, **session_kwargs: object) -> None:
        self.session = SolverSession(manager, **session_kwargs)
        self._stack: List[Term] = []

    def solve(self, prefix: Sequence[Term], *extra: Term) -> CheckResult:
        """Check ``prefix`` (stack-reused) plus ``extra`` assumption deltas."""
        common = 0
        limit = min(len(self._stack), len(prefix))
        while common < limit and self._stack[common] is prefix[common]:
            common += 1
        while len(self._stack) > common:
            self.session.pop()
            self._stack.pop()
        for term in prefix[common:]:
            self.session.push()
            self.session.assert_term(term)
            self._stack.append(term)
        registry = default_registry()
        if registry.enabled:
            registry.histogram("solver.session.reuse_depth").observe(common)
        return self.session.check(*extra)
