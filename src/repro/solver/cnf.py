"""Tseitin conversion from term-level boolean structure to CNF.

Boolean structure of a formula is encoded into SAT clauses while *theory
atoms* (arithmetic relations over integers) become opaque SAT variables.
The :class:`CnfConverter` keeps the bidirectional mapping between atoms and
SAT variables so the lazy SMT loop can translate boolean models back into
sets of theory literals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from .sat import SatSolver
from .terms import Kind, Sort, Term, TermManager

__all__ = ["CnfConverter"]


class CnfConverter:
    """Incrementally encodes boolean formulas into a :class:`SatSolver`.

    Each distinct theory atom (``=``, ``<=``, ``<`` nodes and boolean
    variables) is assigned one SAT variable.  Internal connectives get
    Tseitin definition variables.  Asserting a formula adds its definition
    clauses plus a unit clause for its root literal.
    """

    def __init__(self, manager: TermManager, sat: SatSolver) -> None:
        self._tm = manager
        self._sat = sat
        self._atom_to_svar: Dict[Term, int] = {}
        self._svar_to_atom: Dict[int, Term] = {}
        self._defined: Dict[Term, int] = {}  # term -> literal for its truth

    # -- public API ------------------------------------------------------------

    @property
    def atoms(self) -> Dict[Term, int]:
        """Mapping from theory atoms to their SAT variables."""
        return dict(self._atom_to_svar)

    def atom_of(self, svar: int) -> Optional[Term]:
        """The theory atom encoded by SAT variable ``svar``, if any."""
        return self._svar_to_atom.get(svar)

    def assert_formula(self, formula: Term) -> None:
        """Encode ``formula`` and assert it as true."""
        if formula.sort is not Sort.BOOL:
            raise SolverError(f"cannot assert non-boolean term {formula}")
        lit = self._encode(formula)
        self._sat.add_clause([lit])

    def literal_for(self, formula: Term) -> int:
        """Encode ``formula`` and return a literal equivalent to its truth."""
        return self._encode(formula)

    def model_literals(self, model: Dict[int, bool]) -> List[Tuple[Term, bool]]:
        """Translate a SAT model into (atom, polarity) theory literals."""
        out: List[Tuple[Term, bool]] = []
        for svar, atom in self._svar_to_atom.items():
            if svar in model:
                out.append((atom, model[svar]))
        return out

    # -- encoding ---------------------------------------------------------------

    def _atom_var(self, atom: Term) -> int:
        var = self._atom_to_svar.get(atom)
        if var is None:
            var = self._sat.new_var()
            self._atom_to_svar[atom] = var
            self._svar_to_atom[var] = atom
        return var

    def _encode(self, t: Term) -> int:
        cached = self._defined.get(t)
        if cached is not None:
            return cached
        lit = self._encode_uncached(t)
        self._defined[t] = lit
        return lit

    def _encode_uncached(self, t: Term) -> int:
        k = t.kind
        if k is Kind.CONST_BOOL:
            # a fresh variable pinned true; `false` is its negation
            var = self._sat.new_var()
            self._sat.add_clause([var])
            return var if t.value else -var
        if k is Kind.EQ and t.args[0].sort is Sort.BOOL:
            # boolean equality is an iff, not a theory atom
            a = self._encode(t.args[0])
            b = self._encode(t.args[1])
            out = self._sat.new_var()
            self._sat.add_clause([-out, -a, b])
            self._sat.add_clause([-out, a, -b])
            self._sat.add_clause([out, a, b])
            self._sat.add_clause([out, -a, -b])
            return out
        if t.is_atom:
            return self._atom_var(t)
        if k is Kind.NOT:
            return -self._encode(t.args[0])
        if k is Kind.AND:
            arg_lits = [self._encode(a) for a in t.args]
            out = self._sat.new_var()
            for al in arg_lits:
                self._sat.add_clause([-out, al])
            self._sat.add_clause([out] + [-al for al in arg_lits])
            return out
        if k is Kind.OR:
            arg_lits = [self._encode(a) for a in t.args]
            out = self._sat.new_var()
            for al in arg_lits:
                self._sat.add_clause([out, -al])
            self._sat.add_clause([-out] + arg_lits)
            return out
        if k is Kind.IMPLIES:
            a = self._encode(t.args[0])
            b = self._encode(t.args[1])
            out = self._sat.new_var()
            # out <-> (-a \/ b)
            self._sat.add_clause([-out, -a, b])
            self._sat.add_clause([out, a])
            self._sat.add_clause([out, -b])
            return out
        if k is Kind.ITE and t.sort is Sort.BOOL:
            c = self._encode(t.args[0])
            a = self._encode(t.args[1])
            b = self._encode(t.args[2])
            out = self._sat.new_var()
            self._sat.add_clause([-out, -c, a])
            self._sat.add_clause([-out, c, b])
            self._sat.add_clause([out, -c, -a])
            self._sat.add_clause([out, c, -b])
            return out
        raise SolverError(f"cannot encode term of kind {k}: {t}")
