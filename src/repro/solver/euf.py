"""Congruence closure for the theory of equality with uninterpreted functions.

This implements the classic union-find + congruence-table algorithm with
*explanation generation*: when two terms are merged, the equality (or
congruence step) responsible is recorded on a proof forest so that conflicts
can be traced back to a subset of the asserted input equalities.

The solver consumes conjunctions of equalities and disequalities between
terms built from variables, constants, and uninterpreted function
applications.  It is used in three places:

- as a standalone decision procedure for EUF conjunctions (tests, validity
  engine strategies such as "``f(x)=f(y)`` — set ``x=y``"),
- to detect equalities entailed by a path constraint's equality skeleton,
- as a cross-check for models produced by the Ackermannized main solver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import SolverError
from ..obs.metrics import default_registry
from .terms import Kind, Term

__all__ = ["CongruenceClosure", "EufResult"]


@dataclass
class EufResult:
    """Outcome of an EUF consistency check."""

    sat: bool
    #: When UNSAT: the asserted input literals participating in the conflict.
    #: Each entry is ``(a, b, polarity)`` — an equality if polarity is True.
    conflict: List[Tuple[Term, Term, bool]] = field(default_factory=list)


class CongruenceClosure:
    """Incremental congruence closure with explanations.

    Usage::

        cc = CongruenceClosure()
        cc.assert_equal(x, y, tag=(x, y, True))
        assert cc.are_equal(f_x, f_y)   # by congruence
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._rank: Dict[Term, int] = {}
        # proof forest: child -> (parent, reason); reason is either an input
        # tag or the pair of application terms merged by congruence
        self._proof_parent: Dict[Term, Tuple[Term, object]] = {}
        # uses: representative -> list of application terms having an
        # argument in that class
        self._uses: Dict[Term, List[Term]] = {}
        # congruence signature table: (fn, arg reps) -> application term
        self._sig: Dict[Tuple[object, Tuple[Term, ...]], Term] = {}
        # asserted disequalities with their tags
        self._diseqs: List[Tuple[Term, Term, object]] = []
        self._registered: Set[Term] = set()
        self._pending_apps: List[Term] = []
        self._conflict: Optional[List[Tuple[Term, Term, bool]]] = None
        #: union-find merges performed (congruence-induced ones included)
        self.merges = 0
        self._reported_merges = 0

    # -- registration ------------------------------------------------------------

    def register(self, term: Term) -> None:
        """Make a term (and its subterms) known to the closure."""
        stack = [term]
        while stack:
            t = stack.pop()
            if t in self._registered:
                continue
            self._registered.add(t)
            self._parent[t] = t
            self._rank[t] = 0
            self._uses[t] = []
            if t.kind is Kind.APP:
                for a in t.args:
                    stack.append(a)
                self._pending_apps.append(t)
        # process applications bottom-up (children already registered)
        pending = self._pending_apps
        self._pending_apps = []
        for app in reversed(pending):
            self._install_app(app)

    def _install_app(self, app: Term) -> None:
        sig = (app.fn, tuple(self._find(a) for a in app.args))
        existing = self._sig.get(sig)
        if existing is not None and existing is not app:
            self._merge(app, existing, reason=("congruence", app, existing))
        else:
            self._sig[sig] = app
        for a in app.args:
            self._uses[self._find(a)].append(app)

    # -- union-find --------------------------------------------------------------

    def _find(self, t: Term) -> Term:
        root = t
        while self._parent[root] is not root:
            root = self._parent[root]
        # path compression
        while self._parent[t] is not root:
            self._parent[t], t = root, self._parent[t]
        return root

    def are_equal(self, a: Term, b: Term) -> bool:
        """True if the closure currently entails ``a = b``."""
        self.register(a)
        self.register(b)
        return self._find(a) is self._find(b)

    def representative(self, t: Term) -> Term:
        """Current representative of ``t``'s congruence class."""
        self.register(t)
        return self._find(t)

    def classes(self) -> List[List[Term]]:
        """All congruence classes with >= 1 member, deterministic order."""
        groups: Dict[Term, List[Term]] = {}
        for t in self._registered:
            groups.setdefault(self._find(t), []).append(t)
        out = [sorted(g, key=lambda x: x.tid) for g in groups.values()]
        out.sort(key=lambda g: g[0].tid)
        return out

    # -- assertion ----------------------------------------------------------------

    def assert_equal(self, a: Term, b: Term, tag: object = None) -> bool:
        """Assert ``a = b``; returns False if this caused a conflict."""
        if self._conflict is not None:
            return False
        self.register(a)
        self.register(b)
        self._merge(a, b, reason=("input", tag if tag is not None else (a, b, True)))
        self._check_diseqs()
        return self._conflict is None

    def assert_diseq(self, a: Term, b: Term, tag: object = None) -> bool:
        """Assert ``a != b``; returns False if this caused a conflict."""
        if self._conflict is not None:
            return False
        self.register(a)
        self.register(b)
        self._diseqs.append((a, b, tag if tag is not None else (a, b, False)))
        self._check_diseqs()
        return self._conflict is None

    def check(self) -> EufResult:
        """Report the current consistency status."""
        registry = default_registry()
        if registry.enabled:
            registry.counter("euf.checks").inc()
            registry.counter("euf.merges").inc(self.merges - self._reported_merges)
            self._reported_merges = self.merges
            registry.counter(
                "euf.sat" if self._conflict is None else "euf.unsat"
            ).inc()
        if self._conflict is not None:
            return EufResult(sat=False, conflict=list(self._conflict))
        return EufResult(sat=True)

    # -- merging ----------------------------------------------------------------

    def _merge(self, a: Term, b: Term, reason: object) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra is rb:
            return
        self.merges += 1
        # record proof edge between the original terms
        self._proof_add(a, b, reason)
        # union by rank
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        # congruence propagation: re-signature all uses of the merged class
        moved_uses = self._uses.pop(rb, [])
        self._uses.setdefault(ra, []).extend(moved_uses)
        todo: List[Tuple[Term, Term]] = []
        for app in moved_uses:
            sig = (app.fn, tuple(self._find(x) for x in app.args))
            existing = self._sig.get(sig)
            if existing is None:
                self._sig[sig] = app
            elif self._find(existing) is not self._find(app):
                todo.append((app, existing))
        for app, existing in todo:
            self._merge(app, existing, reason=("congruence", app, existing))

    def _check_diseqs(self) -> None:
        if self._conflict is not None:
            return
        for a, b, tag in self._diseqs:
            if self._find(a) is self._find(b):
                explanation = self.explain(a, b)
                conflict = list(explanation)
                if isinstance(tag, tuple) and len(tag) == 3:
                    conflict.append(tag)  # the violated disequality itself
                self._conflict = conflict
                return

    # -- explanations --------------------------------------------------------------

    def _proof_add(self, a: Term, b: Term, reason: object) -> None:
        """Add edge a—b to the proof forest, re-rooting a's tree at a."""
        self._reroot(a)
        self._proof_parent[a] = (b, reason)

    def _reroot(self, t: Term) -> None:
        path: List[Term] = []
        cur = t
        while cur in self._proof_parent:
            path.append(cur)
            cur = self._proof_parent[cur][0]
        # reverse edges along the path
        for node in reversed(path):
            parent, reason = self._proof_parent.pop(node)
            self._proof_parent[parent] = (node, reason)

    def _proof_path(self, t: Term) -> List[Term]:
        path = [t]
        while path[-1] in self._proof_parent:
            path.append(self._proof_parent[path[-1]][0])
        return path

    def explain(self, a: Term, b: Term) -> List[Tuple[Term, Term, bool]]:
        """Input equalities whose closure entails ``a = b``.

        Returns tags of input assertions (as ``(x, y, True)`` triples unless
        custom tags were supplied, in which case those are returned).
        Congruence steps recurse into argument explanations.
        """
        if self._find(a) is not self._find(b):
            raise SolverError(f"explain called on non-equal terms {a}, {b}")
        out: List[Tuple[Term, Term, bool]] = []
        seen_steps: Set[int] = set()
        self._explain_into(a, b, out, seen_steps, depth=0)
        # dedupe while keeping order
        deduped: List[Tuple[Term, Term, bool]] = []
        seen: Set[object] = set()
        for item in out:
            key = id(item) if not isinstance(item, tuple) else item
            if key in seen:
                continue
            seen.add(key)
            deduped.append(item)
        return deduped

    def _explain_into(
        self,
        a: Term,
        b: Term,
        out: List[Tuple[Term, Term, bool]],
        seen_steps: Set[int],
        depth: int,
    ) -> None:
        if depth > 10_000:
            raise SolverError("explanation recursion too deep")
        if a is b:
            return
        pa = self._proof_path(a)
        pb = self._proof_path(b)
        common = None
        pb_set = {id(t): i for i, t in enumerate(pb)}
        for i, t in enumerate(pa):
            if id(t) in pb_set:
                common = (i, pb_set[id(t)])
                break
        if common is None:
            raise SolverError("no common ancestor in proof forest")
        ia, ib = common
        for i in range(ia):
            self._explain_edge(pa[i], out, seen_steps, depth)
        for i in range(ib):
            self._explain_edge(pb[i], out, seen_steps, depth)

    def _explain_edge(
        self,
        child: Term,
        out: List[Tuple[Term, Term, bool]],
        seen_steps: Set[int],
        depth: int,
    ) -> None:
        parent, reason = self._proof_parent[child]
        if isinstance(reason, tuple) and reason and reason[0] == "congruence":
            _, app1, app2 = reason
            step_key = (id(app1), id(app2))
            if step_key in seen_steps:
                return
            seen_steps.add(step_key)  # type: ignore[arg-type]
            for x, y in zip(app1.args, app2.args):
                self._explain_into(x, y, out, seen_steps, depth + 1)
        elif isinstance(reason, tuple) and reason and reason[0] == "input":
            out.append(reason[1])  # type: ignore[arg-type]
        else:  # pragma: no cover - defensive
            raise SolverError(f"malformed proof reason {reason!r}")


def check_euf_conjunction(
    equalities: Sequence[Tuple[Term, Term]],
    disequalities: Sequence[Tuple[Term, Term]],
) -> EufResult:
    """Convenience one-shot EUF consistency check."""
    cc = CongruenceClosure()
    for a, b in equalities:
        if not cc.assert_equal(a, b):
            return cc.check()
    for a, b in disequalities:
        if not cc.assert_diseq(a, b):
            return cc.check()
    return cc.check()
