"""A CDCL SAT solver.

This is the boolean engine underneath the lazy SMT loop in
:mod:`repro.solver.smt`.  It implements the standard conflict-driven clause
learning architecture:

- two-watched-literal unit propagation,
- first-UIP conflict analysis with clause learning,
- non-chronological backjumping,
- VSIDS-style variable activities with exponential decay,
- Luby-sequence restarts,
- incremental solving under assumptions.

Literals use the DIMACS convention: variables are positive integers, the
literal ``v`` means "v is true" and ``-v`` means "v is false".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ResourceLimitError, SolverError
from ..obs.metrics import default_registry

__all__ = ["SatSolver", "SatResult", "SatStats"]


@dataclass
class SatStats:
    """Counters describing the work a :class:`SatSolver` has done."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict view, the shape ``repro stats`` renders."""
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
            "max_decision_level": self.max_decision_level,
        }

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.to_dict().items())
        return f"SatStats({inner})"


@dataclass
class SatResult:
    """Outcome of a :meth:`SatSolver.solve` call."""

    sat: bool
    #: Full assignment as ``{var: bool}``; empty when unsatisfiable.
    model: Dict[int, bool] = field(default_factory=dict)
    #: Subset of failed assumptions (as literals) when UNSAT under assumptions.
    core: List[int] = field(default_factory=list)


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while True:
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1
        k -= 1
        while (1 << k) - 1 > i:
            k -= 1


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clause({self.lits})"


class SatSolver:
    """Conflict-driven clause-learning SAT solver.

    Usage::

        s = SatSolver()
        v1, v2 = s.new_var(), s.new_var()
        s.add_clause([v1, v2])
        s.add_clause([-v1])
        result = s.solve()
        assert result.sat and result.model[v2] is True
    """

    def __init__(
        self,
        max_conflicts: Optional[int] = None,
        enable_restarts: bool = True,
        activity_decay: float = 0.95,
    ) -> None:
        self.stats = SatStats()
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        # assignment trail
        self._assign: List[int] = []       # var -> 0 unassigned, 1 true, -1 false
        self._level: List[int] = []        # var -> decision level
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        # watches: literal -> clauses watching it; indexed by encoded literal
        self._watches: Dict[int, List[_Clause]] = {}
        # activity
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = activity_decay
        # decision order: indexed binary max-heap over (activity, -var).
        # Every unassigned variable is always in the heap; variables
        # assigned while heaped stay until lazily discarded at the root
        # by _decide, and _backtrack reinserts any that fell out.  The
        # root therefore equals the old linear scan's pick (max activity,
        # ties to the lowest variable), keeping decisions — and digests —
        # byte-identical while replacing the O(n) scan per decision.
        self._heap: List[int] = []
        self._heap_pos: List[int] = []     # var-1 -> heap index, -1 if absent
        self._max_conflicts = max_conflicts
        self._enable_restarts = enable_restarts
        self._n_assumed = 0
        self._ok = True  # False once a top-level conflict is derived

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its positive index."""
        self._num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._heap_pos.append(-1)
        self._heap_insert(self._num_vars)
        return self._num_vars

    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        The clause may be added at decision level 0 only (between solves or
        before the first solve); the lazy SMT loop always backtracks to the
        root before adding theory lemmas.
        """
        if self._trail_lim:
            raise SolverError("add_clause requires decision level 0")
        if not self._ok:
            return False
        seen: Set[int] = set()
        out: List[int] = []
        for lit in lits:
            var = abs(lit)
            if var == 0 or var > self._num_vars:
                raise SolverError(f"unknown variable in literal {lit}")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val == 1 and self._level[var - 1] == 0:
                return True  # already satisfied at root
            if val == -1 and self._level[var - 1] == 0:
                continue  # falsified at root; drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out, learned=False)
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: _Clause) -> None:
        self._watches.setdefault(-clause.lits[0], []).append(clause)
        self._watches.setdefault(-clause.lits[1], []).append(clause)

    # -- assignment helpers ----------------------------------------------------

    def _value(self, lit: int) -> int:
        """1 if lit is true, -1 if false, 0 if unassigned."""
        v = self._assign[abs(lit) - 1]
        return v if lit > 0 else -v

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        var = abs(lit)
        self._assign[var - 1] = 1 if lit > 0 else -1
        self._level[var - 1] = len(self._trail_lim)
        self._reason[var - 1] = reason
        self._trail.append(lit)
        self.stats.propagations += 1
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            keep: List[_Clause] = []
            conflict_clause: Optional[_Clause] = None
            for idx, clause in enumerate(watchers):
                lits = clause.lits
                # ensure the false literal is at position 1
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) == 1:
                    keep.append(clause)
                    continue
                # look for a new literal to watch
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches.setdefault(-lits[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause)
                if not self._enqueue(lits[0], clause):
                    # conflict: restore untouched watchers and report
                    keep.extend(watchers[idx + 1:])
                    conflict_clause = clause
                    break
            self._watches[lit] = keep
            if conflict_clause is not None:
                return conflict_clause
        return None

    # -- conflict analysis --------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var - 1] += self._var_inc
        if self._activity[var - 1] > 1e100:
            # uniform rescale preserves relative order (and exact ties),
            # so the heap needs no repair
            for i in range(self._num_vars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
        if self._heap_pos[var - 1] >= 0:
            self._heap_sift_up(self._heap_pos[var - 1])

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self._num_vars
        counter = 0
        lit = 0
        reason: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        cur_level = len(self._trail_lim)

        while True:
            assert reason is not None
            for q in reason.lits:
                # skip the literal we are resolving on: the asserted literal
                # of this reason clause is the trail literal, i.e. -lit
                if q == -lit:
                    continue
                var = abs(q)
                if not seen[var - 1] and self._level[var - 1] > 0:
                    seen[var - 1] = True
                    self._bump(var)
                    if self._level[var - 1] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # pick next literal to expand from the trail
            while not seen[abs(self._trail[index]) - 1]:
                index -= 1
            lit = -self._trail[index]
            var = abs(lit)
            seen[var - 1] = False
            index -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var - 1]
        learned[0] = lit

        if len(learned) == 1:
            return learned, 0
        # find the second-highest level among learned literals
        max_i = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i]) - 1] > self._level[abs(learned[max_i]) - 1]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self._level[abs(learned[1]) - 1]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var - 1] = 0
            self._reason[var - 1] = None
            if self._heap_pos[var - 1] < 0:
                self._heap_insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # -- decision heuristics -------------------------------------------------------

    def _heap_before(self, a: int, b: int) -> bool:
        """Heap order: higher activity first, ties to the lower variable."""
        aa = self._activity[a - 1]
        ba = self._activity[b - 1]
        return aa > ba or (aa == ba and a < b)

    def _heap_insert(self, var: int) -> None:
        heap = self._heap
        heap.append(var)
        self._heap_pos[var - 1] = len(heap) - 1
        self._heap_sift_up(len(heap) - 1)

    def _heap_sift_up(self, i: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        var = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if not self._heap_before(var, pvar):
                break
            heap[i] = pvar
            pos[pvar - 1] = i
            i = parent
        heap[i] = var
        pos[var - 1] = i

    def _heap_pop_root(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        root = heap[0]
        pos[root - 1] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last - 1] = 0
            # sift down
            i = 0
            size = len(heap)
            while True:
                left = 2 * i + 1
                if left >= size:
                    break
                best = left
                right = left + 1
                if right < size and self._heap_before(heap[right], heap[left]):
                    best = right
                if not self._heap_before(heap[best], heap[i]):
                    break
                heap[i], heap[best] = heap[best], heap[i]
                pos[heap[i] - 1] = i
                pos[heap[best] - 1] = best
                i = best
        return root

    def _decide(self) -> int:
        """Pick the unassigned variable with maximal activity; 0 when none.

        Assigned variables encountered at the root are discarded lazily
        (they re-enter via :meth:`_backtrack`); the surviving root matches
        the old linear scan exactly.
        """
        heap = self._heap
        while heap:
            var = heap[0]
            if self._assign[var - 1] == 0:
                return var
            self._heap_pop_root()
        return 0

    # -- main search --------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Search for a model under the given assumption literals.

        Work deltas (conflicts, decisions, propagations) and wall time of
        each query are recorded into the default metrics registry — only
        here at the query boundary, never inside the inner loops.
        """
        registry = default_registry()
        if not registry.enabled:
            return self._solve(assumptions)
        start = perf_counter()
        before = (
            self.stats.conflicts,
            self.stats.decisions,
            self.stats.propagations,
        )
        result = self._solve(assumptions)
        registry.counter("sat.queries").inc()
        registry.counter("sat.sat" if result.sat else "sat.unsat").inc()
        registry.counter("sat.conflicts").inc(self.stats.conflicts - before[0])
        registry.counter("sat.decisions").inc(self.stats.decisions - before[1])
        registry.counter("sat.propagations").inc(
            self.stats.propagations - before[2]
        )
        registry.histogram("sat.solve_seconds").observe(perf_counter() - start)
        return result

    def _solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        if not self._ok:
            return SatResult(sat=False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult(sat=False)

        conflicts_since_restart = 0
        restart_number = 1
        restart_budget = 32 * _luby(restart_number)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if (
                    self._max_conflicts is not None
                    and self.stats.conflicts > self._max_conflicts
                ):
                    raise ResourceLimitError(
                        f"SAT conflict budget {self._max_conflicts} exhausted"
                    )
                if len(self._trail_lim) == 0:
                    self._ok = False
                    return SatResult(sat=False)
                # conflict below assumption depth: compute an assumption core
                if len(self._trail_lim) <= getattr(self, "_n_assumed", 0):
                    core = self._assumption_core(conflict, assumptions)
                    self._backtrack(0)
                    return SatResult(sat=False, core=core)
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, getattr(self, "_n_assumed", 0))
                self._backtrack(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return SatResult(sat=False)
                else:
                    clause = _Clause(learned, learned=True)
                    self._clauses.append(clause)
                    self.stats.learned_clauses += 1
                    self._watch(clause)
                    self._enqueue(learned[0], clause)
                self._var_inc /= self._var_decay
                continue

            if (
                self._enable_restarts
                and conflicts_since_restart >= restart_budget
                and len(self._trail_lim) > getattr(self, "_n_assumed", 0)
            ):
                self.stats.restarts += 1
                restart_number += 1
                restart_budget = 32 * _luby(restart_number)
                conflicts_since_restart = 0
                self._backtrack(getattr(self, "_n_assumed", 0))
                continue

            # place assumptions first, one decision level per assumption
            pending = None
            while len(self._trail_lim) < len(assumptions):
                a = assumptions[len(self._trail_lim)]
                val = self._value(a)
                if val == -1:
                    core = self._assumption_core(None, assumptions, failed=a)
                    self._backtrack(0)
                    return SatResult(sat=False, core=core)
                if val == 1:
                    # already implied; open an empty level to keep indices aligned
                    self._trail_lim.append(len(self._trail))
                    continue
                pending = a
                break
            self._n_assumed = len(self._trail_lim)
            if pending is not None:
                self._trail_lim.append(len(self._trail))
                self._n_assumed = len(self._trail_lim)
                self._enqueue(pending, None)
                continue

            var = self._decide()
            if var == 0:
                model = {
                    v: self._assign[v - 1] == 1 for v in range(1, self._num_vars + 1)
                }
                self._backtrack(0)
                self._n_assumed = 0
                return SatResult(sat=True, model=model)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, len(self._trail_lim)
            )
            # phase saving could go here; default to False first
            self._enqueue(-var, None)

    def _assumption_core(
        self,
        conflict: Optional[_Clause],
        assumptions: Sequence[int],
        failed: Optional[int] = None,
    ) -> List[int]:
        """Conservative unsat core: the set of assumptions currently assigned.

        A precise core would resolve the conflict back through reasons; for
        the SMT loop's purposes (blocking clause minimization happens at the
        theory level) the conservative core is sufficient.
        """
        core = [a for a in assumptions if self._value(a) != 0]
        if failed is not None and failed not in core:
            core.append(failed)
        return core

    def simplify_ok(self) -> bool:
        """True while no top-level conflict has been derived."""
        return self._ok
