"""SMT-LIB 2 export of terms, assertions, and validity queries.

Useful for debugging and for cross-checking this library's verdicts
against an external solver when one is available.  The exported scripts
use only core SMT-LIB (``QF_UFLIA`` for satisfiability queries, ``UFLIA``
with an explicit universal quantifier for validity queries).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..errors import SolverError
from .terms import FunctionSymbol, Kind, Sort, Term, TermManager
from .validity import Sample

__all__ = ["term_to_smtlib", "script_for_sat", "script_for_validity"]


def term_to_smtlib(term: Term) -> str:
    """Render one term as an SMT-LIB 2 s-expression."""
    k = term.kind
    if k is Kind.CONST_INT:
        value = int(term.value)  # type: ignore[arg-type]
        return str(value) if value >= 0 else f"(- {-value})"
    if k is Kind.CONST_BOOL:
        return "true" if term.value else "false"
    if k is Kind.VAR:
        return str(term.name)
    if k is Kind.APP:
        assert term.fn is not None
        inner = " ".join(term_to_smtlib(a) for a in term.args)
        return f"({term.fn.name} {inner})"
    if k is Kind.NEG:
        return f"(- {term_to_smtlib(term.args[0])})"
    op_map = {
        Kind.ADD: "+",
        Kind.MUL: "*",
        Kind.EQ: "=",
        Kind.LE: "<=",
        Kind.LT: "<",
        Kind.NOT: "not",
        Kind.AND: "and",
        Kind.OR: "or",
        Kind.IMPLIES: "=>",
        Kind.ITE: "ite",
    }
    op = op_map.get(k)
    if op is None:
        raise SolverError(f"cannot render kind {k} as SMT-LIB")
    inner = " ".join(term_to_smtlib(a) for a in term.args)
    return f"({op} {inner})"


def _declarations(formulas: Sequence[Term]) -> List[str]:
    vars_seen: Set[Term] = set()
    fns_seen: Set[FunctionSymbol] = set()
    for f in formulas:
        for t in f.iter_dag():
            if t.is_var:
                vars_seen.add(t)
            elif t.is_app and t.fn is not None:
                fns_seen.add(t.fn)
    lines = []
    for fn in sorted(fns_seen, key=lambda f: f.name):
        domain = " ".join(["Int"] * fn.arity)
        lines.append(f"(declare-fun {fn.name} ({domain}) Int)")
    for v in sorted(vars_seen, key=lambda t: t.name or ""):
        sort = "Int" if v.sort is Sort.INT else "Bool"
        lines.append(f"(declare-const {v.name} {sort})")
    return lines


def script_for_sat(formulas: Sequence[Term], logic: str = "QF_UFLIA") -> str:
    """An SMT-LIB script asserting ``formulas`` and checking satisfiability."""
    lines = [f"(set-logic {logic})"]
    lines.extend(_declarations(formulas))
    for f in formulas:
        lines.append(f"(assert {term_to_smtlib(f)})")
    lines.append("(check-sat)")
    lines.append("(get-model)")
    return "\n".join(lines) + "\n"


def script_for_validity(
    tm: TermManager,
    pc: Term,
    input_vars: Sequence[Term],
    samples: Sequence[Sample] = (),
) -> str:
    """An SMT-LIB script for the paper's validity query ``∀F ∃X (A ⇒ pc)``.

    Validity is encoded as unsatisfiability of the negation
    ``∀X ¬(A ⇒ pc)`` with the function symbols free (implicitly
    universally... existential in the negated form): the script asserts
    ``(forall (X) (not (=> A pc)))`` and expects ``unsat`` iff the
    original formula is valid.
    """
    antecedent_terms = [
        tm.mk_eq(
            tm.mk_app(s.fn, [tm.mk_int(a) for a in s.args]), tm.mk_int(s.value)
        )
        for s in samples
    ]
    antecedent = tm.mk_and(*antecedent_terms) if antecedent_terms else tm.true_
    matrix = tm.mk_implies(antecedent, pc)

    lines = ["(set-logic UFLIA)"]
    # declare functions only; input vars are bound by the quantifier
    input_set = set(input_vars)
    fns_seen: Set[FunctionSymbol] = set()
    free_vars: Set[Term] = set()
    for t in matrix.iter_dag():
        if t.is_app and t.fn is not None:
            fns_seen.add(t.fn)
        elif t.is_var and t not in input_set:
            free_vars.add(t)
    for fn in sorted(fns_seen, key=lambda f: f.name):
        domain = " ".join(["Int"] * fn.arity)
        lines.append(f"(declare-fun {fn.name} ({domain}) Int)")
    for v in sorted(free_vars, key=lambda t: t.name or ""):
        lines.append(f"(declare-const {v.name} Int)")
    bound = " ".join(f"({v.name} Int)" for v in input_vars)
    lines.append(f"(assert (forall ({bound}) (not {term_to_smtlib(matrix)})))")
    lines.append("(check-sat)  ; unsat here means the POST formula is VALID")
    return "\n".join(lines) + "\n"
