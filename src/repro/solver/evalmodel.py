"""Evaluation of terms under a :class:`~repro.solver.smt.Model`.

Used both as the solver's model-verification safety net and by the validity
engine to evaluate candidate strategies against adversary functions.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import SolverError
from .smt import Model
from .terms import Kind, Sort, Term

__all__ = ["evaluate", "evaluate_with_oracle"]


def evaluate_with_oracle(
    term: Term,
    ints: Dict[str, int],
    oracle: Callable[[str, Tuple[int, ...]], int],
) -> Union[int, bool]:
    """Evaluate ``term`` calling ``oracle(fn_name, args)`` for UF applications.

    This gives terms their *real-world* semantics: uninterpreted function
    applications are resolved by the actual (opaque) implementation instead
    of a finite model table.  Used to state the paper's soundness theorems
    precisely: an input satisfies a path constraint iff the constraint
    evaluates true under the real functions.
    """

    class _OracleModel(Model):
        def apply(self, fn, args):  # type: ignore[override]
            return oracle(fn.name, args)

    return evaluate(term, _OracleModel(ints=dict(ints)))


def evaluate(term: Term, model: Model) -> Union[int, bool]:
    """Evaluate ``term`` to a Python int or bool under ``model``.

    Unassigned variables take the model's default value; uninterpreted
    function applications are looked up in the model's finite tables, also
    falling back to the default for unlisted points.
    """
    cache: Dict[Term, Union[int, bool]] = {}

    def walk(t: Term) -> Union[int, bool]:
        cached = cache.get(t)
        if cached is not None or t in cache:
            return cache[t]
        value = _eval_node(t, walk, model)
        cache[t] = value
        return value

    return walk(term)


def _eval_node(t: Term, walk, model: Model) -> Union[int, bool]:
    k = t.kind
    if k is Kind.CONST_INT:
        return int(t.value)  # type: ignore[arg-type]
    if k is Kind.CONST_BOOL:
        return bool(t.value)
    if k is Kind.VAR:
        if t.sort is Sort.INT:
            return model.ints.get(t.name or "", model.default)
        return model.bools.get(t.name or "", False)
    if k is Kind.APP:
        assert t.fn is not None
        args = tuple(int(walk(a)) for a in t.args)
        return model.apply(t.fn, args)
    if k is Kind.ADD:
        return sum(int(walk(a)) for a in t.args)
    if k is Kind.NEG:
        return -int(walk(t.args[0]))
    if k is Kind.MUL:
        return int(walk(t.args[0])) * int(walk(t.args[1]))
    if k is Kind.EQ:
        return walk(t.args[0]) == walk(t.args[1])
    if k is Kind.LE:
        return int(walk(t.args[0])) <= int(walk(t.args[1]))
    if k is Kind.LT:
        return int(walk(t.args[0])) < int(walk(t.args[1]))
    if k is Kind.NOT:
        return not walk(t.args[0])
    if k is Kind.AND:
        return all(bool(walk(a)) for a in t.args)
    if k is Kind.OR:
        return any(bool(walk(a)) for a in t.args)
    if k is Kind.IMPLIES:
        return (not walk(t.args[0])) or bool(walk(t.args[1]))
    if k is Kind.ITE:
        return walk(t.args[1]) if walk(t.args[0]) else walk(t.args[2])
    raise SolverError(f"cannot evaluate term of kind {k}")
