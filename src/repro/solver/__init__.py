"""From-scratch SMT solving stack for quantifier-free LIA + EUF.

Public entry points:

- :class:`~repro.solver.terms.TermManager` — build formulas.
- :class:`~repro.solver.smt.Solver` — satisfiability checking with models.
- :class:`~repro.solver.validity.ValidityChecker` — the paper's validity
  queries ``∀F ∃X (A ⇒ pc)`` with test-strategy extraction.
- :class:`~repro.solver.euf.CongruenceClosure` — standalone EUF reasoning.
- :class:`~repro.solver.lia.LiaSolver` — standalone integer arithmetic.
- :class:`~repro.solver.sat.SatSolver` — standalone CDCL SAT.
"""

from .terms import FunctionSymbol, Kind, Sort, Term, TermManager
from .sat import SatSolver, SatResult, SatStats
from .euf import CongruenceClosure, EufResult, check_euf_conjunction
from .simplex import Simplex, SimplexResult
from .lia import LiaSolver, LiaResult
from .intervals import Bound, BoundsAnalysis
from .cache import QueryCache, default_cache, set_default_cache, use_cache
from .session import PrefixSession, SolverSession
from .smt import Solver, Model, CheckResult, ackermannize
from .evalmodel import evaluate, evaluate_with_oracle
from .nnf import atoms_of, conjunctive_branches, to_nnf
from .printer import script_for_sat, script_for_validity, term_to_smtlib
from .certificates import InvalidityCertificate, ValidityCertificate, certify

__all__ = [
    "Bound",
    "BoundsAnalysis",
    "evaluate_with_oracle",
    "atoms_of",
    "conjunctive_branches",
    "to_nnf",
    "script_for_sat",
    "script_for_validity",
    "term_to_smtlib",
    "InvalidityCertificate",
    "ValidityCertificate",
    "certify",
    "FunctionSymbol",
    "Kind",
    "Sort",
    "Term",
    "TermManager",
    "SatSolver",
    "SatResult",
    "SatStats",
    "CongruenceClosure",
    "EufResult",
    "check_euf_conjunction",
    "Simplex",
    "SimplexResult",
    "LiaSolver",
    "LiaResult",
    "Solver",
    "Model",
    "CheckResult",
    "ackermannize",
    "evaluate",
    "QueryCache",
    "default_cache",
    "set_default_cache",
    "use_cache",
    "PrefixSession",
    "SolverSession",
]
