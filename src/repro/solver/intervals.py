"""Interval (bounds) propagation: a presolver for integer linear arithmetic.

Classic bound tightening: given normalized constraints
``sum(c_i * x_i) <= k`` and ``= k``, repeatedly derive variable bounds

    c_j * x_j  <=  k - sum_{i != j} min(c_i * x_i)

until a fixpoint (or a round budget).  Three outcomes:

- a conflict (``lo > hi`` for some variable) with a provenance core of
  constraint tags — the conjunction is UNSAT without ever pivoting;
- tightened variable bounds that seed the simplex and shrink
  branch-and-bound trees;
- nothing, in which case the full decision procedure takes over.

Every derived bound carries the set of constraint tags it depends on, so
conflicts report valid (if not minimal) unsatisfiable cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["Bound", "BoundsAnalysis"]


@dataclass
class Bound:
    """One side of a variable's interval, with provenance tags."""

    value: int
    tags: FrozenSet[object] = frozenset()


@dataclass
class BoundsAnalysis:
    """Interval propagation over normalized linear integer constraints.

    Usage::

        ba = BoundsAnalysis(num_vars)
        ba.add_le({0: 2, 1: -1}, 5, tag="c1")   # 2*x0 - x1 <= 5
        outcome = ba.propagate()
        if outcome is not None:     # conflict core
            ...
        lo, hi = ba.interval(0)
    """

    num_vars: int
    max_rounds: int = 30
    _les: List[Tuple[Dict[int, int], int, object]] = field(default_factory=list)
    _lower: List[Optional[Bound]] = field(default_factory=list)
    _upper: List[Optional[Bound]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lower = [None] * self.num_vars
        self._upper = [None] * self.num_vars

    # -- constraint intake -------------------------------------------------

    def add_le(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Register ``sum(coeffs) <= const``."""
        nonzero = {v: c for v, c in coeffs.items() if c != 0}
        if nonzero:
            self._les.append((nonzero, const, tag))

    def add_eq(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Register ``sum(coeffs) = const`` as two inequalities."""
        self.add_le(coeffs, const, tag)
        self.add_le({v: -c for v, c in coeffs.items()}, -const, tag)

    # -- propagation -----------------------------------------------------------

    def _tighten_upper(self, var: int, value: int, tags: FrozenSet[object]) -> bool:
        current = self._upper[var]
        if current is None or value < current.value:
            self._upper[var] = Bound(value, tags)
            return True
        return False

    def _tighten_lower(self, var: int, value: int, tags: FrozenSet[object]) -> bool:
        current = self._lower[var]
        if current is None or value > current.value:
            self._lower[var] = Bound(value, tags)
            return True
        return False

    def propagate(self) -> Optional[List[object]]:
        """Run propagation; returns a conflict core or None.

        A returned core is a list of constraint tags whose conjunction is
        integer-infeasible.
        """
        for _round in range(self.max_rounds):
            changed = False
            for coeffs, const, tag in self._les:
                # residual = const - sum over other vars of their minimal
                # contribution; derive a bound for each var in turn
                for var, coeff in coeffs.items():
                    residual = const
                    tags = {tag} if tag is not None else set()
                    feasible = True
                    for other, c2 in coeffs.items():
                        if other == var:
                            continue
                        contrib = self._min_contribution(other, c2)
                        if contrib is None:
                            feasible = False
                            break
                        value, used = contrib
                        residual -= value
                        tags |= used
                    if not feasible:
                        continue
                    frozen = frozenset(tags)
                    if coeff > 0:
                        # var <= floor(residual / coeff)
                        bound = _floor_div(residual, coeff)
                        changed |= self._tighten_upper(var, bound, frozen)
                    else:
                        # var >= ceil(residual / coeff) with coeff < 0
                        bound = _ceil_div(residual, coeff)
                        changed |= self._tighten_lower(var, bound, frozen)
                    conflict = self._conflict_at(var)
                    if conflict is not None:
                        return conflict
            if not changed:
                return None
        return None

    def _min_contribution(
        self, var: int, coeff: int
    ) -> Optional[Tuple[int, FrozenSet[object]]]:
        """Minimum of ``coeff * var`` under current bounds, or None."""
        if coeff > 0:
            bound = self._lower[var]
            if bound is None:
                return None
            return coeff * bound.value, bound.tags
        bound = self._upper[var]
        if bound is None:
            return None
        return coeff * bound.value, bound.tags

    def _conflict_at(self, var: int) -> Optional[List[object]]:
        lo, hi = self._lower[var], self._upper[var]
        if lo is not None and hi is not None and lo.value > hi.value:
            core = list(lo.tags | hi.tags)
            return core
        return None

    # -- results --------------------------------------------------------------

    def interval(self, var: int) -> Tuple[Optional[int], Optional[int]]:
        """Current (lower, upper) bounds of ``var``."""
        lo = self._lower[var].value if self._lower[var] is not None else None
        hi = self._upper[var].value if self._upper[var] is not None else None
        return lo, hi

    def bounded_vars(self) -> List[int]:
        """Variables with at least one derived bound."""
        return [
            v
            for v in range(self.num_vars)
            if self._lower[v] is not None or self._upper[v] is not None
        ]


def _floor_div(a: int, b: int) -> int:
    """Floor division valid for b > 0 (Python's // already floors)."""
    return a // b


def _ceil_div(a: int, b: int) -> int:
    """Ceiling of a / b for b != 0."""
    q, r = divmod(a, b)
    return q + (1 if r else 0)
