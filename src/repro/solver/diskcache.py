"""Persistent on-disk solver-query cache, shared across processes and runs.

The in-memory :class:`~repro.solver.cache.QueryCache` dies with its
process, so every ``repro run``/``repro bench``/``repro campaign``
invocation used to start solving from a cold corpus.  :class:`DiskCache`
keeps memoized verdicts on disk, **content-addressed** by the same
:func:`~repro.solver.terms.canonical_query` key the memory cache uses —
the SHA-256 of the canonical key's printed form names the entry's file, so
structurally identical queries (up to variable/function renaming) from any
process, any :class:`~repro.solver.terms.TermManager`, and any run land on
the same entry.

Since the shared content-addressed store landed, :class:`DiskCache` is a
thin adapter over the ``solver/`` namespace of a
:class:`~repro.store.ContentStore` rooted at its directory::

    <cache-dir>/
        solver/
            ab/
                ab3f...e2.json        # one canonical verdict per file
        journal.jsonl                 # store access journal (LRU order)

The store owns the write discipline (atomic temp + ``os.replace``, safe
concurrent writers across processes and machines), corrupt-entry
quarantine, eviction, and the access journal; this module owns the
solver-specific payload schema and the digesting of canonical keys.
**Content digests and payloads are unchanged** from the pre-store flat
layout — only the fanout moved under ``solver/`` — and a directory still
holding the old flat layout is imported once, transparently, on first
open (old files left intact; see
:meth:`~repro.store.ContentStore.migrate_flat_solver_cache`).

Invalidation
------------
Every entry embeds a format header (:data:`DISKCACHE_FORMAT`).  An entry
with the wrong header, malformed JSON (truncated write, disk corruption),
or a payload that fails shape validation is treated as a **miss** — never
an error — counted as ``solver.diskcache.skipped``, and **quarantined on
first detection** (counted as ``solver.diskcache.corrupt_removed``) so a
poisoned entry costs one failed parse ever, not one per lookup until the
next store happens to replace it.  Bumping :data:`DISKCACHE_FORMAT`
therefore self-invalidates a whole cache directory without tooling.

Determinism contract
--------------------
Identical to the memory cache (see :mod:`repro.solver.cache`): only
stateless solves are stored, a hit returns exactly what a cold solve would
have computed, so cache population order — and disk-cache warmth — is
unobservable in generated test suites.

Hits, misses, stores, and skipped (corrupt) entries are counted in the
default metrics registry as ``solver.diskcache.*`` (and, via the store,
as ``store.solver.*``).
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Dict, Optional, Tuple

from ..obs.metrics import default_registry
from ..store import ContentStore
from .cache import CachedResult

__all__ = ["DISKCACHE_FORMAT", "DiskCache"]

#: bump to invalidate every existing cache directory (schema changes,
#: canonical-key changes, solver behaviour changes)
DISKCACHE_FORMAT = 1


def _encode(entry: CachedResult) -> Dict[str, object]:
    """JSON-serializable form of a canonical cached verdict."""
    return {
        "format": DISKCACHE_FORMAT,
        "sat": bool(entry.sat),
        "iterations": int(entry.iterations),
        "default": int(entry.default),
        "ints": [[idx, value] for idx, value in sorted(entry.int_values.items())],
        "bools": [[idx, value] for idx, value in sorted(entry.bool_values.items())],
        "tables": [
            [fidx, [[list(args), value] for args, value in sorted(table.items())]]
            for fidx, table in sorted(entry.tables.items())
        ],
    }


def _decode(payload: object) -> CachedResult:
    """Rebuild a :class:`CachedResult`; raises on any shape violation."""
    if not isinstance(payload, dict):
        raise ValueError("disk cache entry is not an object")
    if payload.get("format") != DISKCACHE_FORMAT:
        raise ValueError(
            f"disk cache entry format {payload.get('format')!r} "
            f"!= {DISKCACHE_FORMAT}"
        )
    return CachedResult(
        sat=bool(payload["sat"]),
        iterations=int(payload["iterations"]),
        int_values={int(i): int(v) for i, v in payload["ints"]},
        bool_values={int(i): bool(v) for i, v in payload["bools"]},
        tables={
            int(fidx): {
                tuple(int(a) for a in args): int(value) for args, value in rows
            }
            for fidx, rows in payload["tables"]
        },
        default=int(payload["default"]),
    )


class DiskCache:
    """Content-addressed persistent store of canonical solver verdicts.

    Safe to share across threads and processes; see the module docstring
    for the write discipline.  Normally attached as the second tier of a
    :class:`~repro.solver.cache.QueryCache` (``QueryCache(disk=...)``)
    rather than consulted directly.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        self._store = ContentStore(self.directory)
        # one-shot import of a pre-store flat cache layout (old files
        # left intact; no-op on already-migrated or fresh directories)
        self._store.migrate_flat_solver_cache()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entries found on disk but unreadable (corrupt/stale format)
        self.skipped = 0
        #: corrupt entries quarantined on first detection
        self.corrupt_removed = 0

    # -- addressing --------------------------------------------------------

    @property
    def content_store(self) -> ContentStore:
        """The shared content-addressed store this cache lives in."""
        return self._store

    def path_for(self, key: Tuple[object, ...]) -> str:
        """The entry file a canonical key is addressed to."""
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self._store.path_for("solver", digest)

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: Tuple[object, ...]) -> Optional[CachedResult]:
        """The stored verdict for ``key``, or None (miss or unreadable)."""
        path = self.path_for(key)
        entry: Optional[CachedResult] = None
        payload, corrupt = self._store.load_entry(
            "solver", path, expected_format=DISKCACHE_FORMAT
        )
        if payload is not None:
            try:
                entry = _decode(payload)
            except (ValueError, KeyError, TypeError):
                # shape violation the store's format check let through:
                # quarantine it here, same one-parse-ever policy
                corrupt = self._store.quarantine("solver", path)
        removed = corrupt  # quarantined = gone from its address
        with self._lock:
            if entry is not None:
                self.hits += 1
            else:
                self.misses += 1
                if corrupt:
                    self.skipped += 1
                if removed:
                    self.corrupt_removed += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter(
                "solver.diskcache.hits" if entry is not None
                else "solver.diskcache.misses"
            ).inc()
            if corrupt:
                registry.counter("solver.diskcache.skipped").inc()
            if removed:
                registry.counter("solver.diskcache.corrupt_removed").inc()
        return entry

    def store(self, key: Tuple[object, ...], entry: CachedResult) -> None:
        """Persist ``entry`` under ``key`` (atomic write-rename; best effort).

        Disk trouble (full volume, permissions) downgrades to not caching —
        the computed result is already in the caller's hands.
        """
        if not self._store.save("solver", self.path_for(key), _encode(entry)):
            return
        with self._lock:
            self.stores += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter("solver.diskcache.stores").inc()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        """Number of entry files currently on disk (walks the namespace)."""
        count = 0
        top = os.path.join(self.directory, "solver")
        for _dirpath, _dirnames, filenames in os.walk(top):
            count += sum(
                1 for name in filenames
                if name.endswith(".json") and not name.startswith(".tmp-")
            )
        return count

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
