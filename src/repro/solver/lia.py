"""Linear integer arithmetic decision procedure.

Decides conjunctions of linear constraints over integer variables:

- ``sum(c_i * x_i) <= c``  (and ``>=``, ``<``, ``>`` via normalization)
- ``sum(c_i * x_i) = c``
- ``sum(c_i * x_i) != c``

The procedure layers three classic techniques on the rational
:class:`~repro.solver.simplex.Simplex`:

1. *Normalization & tightening*: every inequality is divided by the GCD of
   its coefficients and its constant floored (sound over integers); every
   equality gets a GCD divisibility test (catching e.g. ``2x = 2y + 1``).
2. *Branch and bound* on fractional variables of the rational relaxation.
3. *Disequality splitting*: a violated ``!= c`` constraint branches into
   ``<= c-1`` and ``>= c+1``.

Conflicts are reported as cores of input-constraint *tags*.  Cores derived
from branching are unions over both branches (valid, not necessarily
minimal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from time import perf_counter

from ..errors import ResourceLimitError
from ..obs.metrics import default_registry
from .simplex import Simplex

__all__ = ["LiaSolver", "LiaResult", "LinearConstraint"]


@dataclass(frozen=True)
class LinearConstraint:
    """A normalized linear constraint ``sum(coeffs) OP const``.

    ``op`` is one of ``"<="``, ``"="``, ``"!="``.  Coefficients and the
    constant are integers; coefficient keys are solver variable indices.
    """

    coeffs: Tuple[Tuple[int, int], ...]
    op: str
    const: int
    tag: object = None

    def coeff_dict(self) -> Dict[int, int]:
        return dict(self.coeffs)


@dataclass
class LiaResult:
    """Outcome of a :meth:`LiaSolver.check` call."""

    sat: bool
    model: Dict[int, int] = field(default_factory=dict)
    core: List[object] = field(default_factory=list)
    branches: int = 0


def _normalize_le(coeffs: Dict[int, int], const: int) -> Tuple[Dict[int, int], int]:
    """Tighten ``sum <= const`` by the coefficient GCD (sound over Z)."""
    nonzero = {v: c for v, c in coeffs.items() if c != 0}
    if not nonzero:
        return {}, const
    g = 0
    for c in nonzero.values():
        g = math.gcd(g, abs(c))
    if g > 1:
        nonzero = {v: c // g for v, c in nonzero.items()}
        const = math.floor(Fraction(const, g))
    return nonzero, const


class LiaSolver:
    """One-shot solver for a conjunction of integer linear constraints.

    Usage::

        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_le({x: 1, y: -1}, -1, tag="x<y")    # x - y <= -1
        lia.add_eq({y: 1}, 5, tag="y=5")
        result = lia.check()
        assert result.sat and result.model[x] <= 4
    """

    def __init__(
        self,
        max_branches: int = 2_000,
        max_pivots: int = 200_000,
        presolve: bool = True,
    ) -> None:
        self._names: List[str] = []
        self._les: List[LinearConstraint] = []
        self._eqs: List[LinearConstraint] = []
        self._diseqs: List[LinearConstraint] = []
        self._trivially_unsat: Optional[List[object]] = None
        self._max_branches = max_branches
        self._max_pivots = max_pivots
        self._presolve = presolve
        #: True when the last check() was settled by interval propagation
        self.presolve_hit = False

    # -- construction ---------------------------------------------------------

    def new_var(self, name: Optional[str] = None) -> int:
        idx = len(self._names)
        self._names.append(name or f"v{idx}")
        return idx

    def num_vars(self) -> int:
        return len(self._names)

    def add_le(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Add ``sum(coeffs) <= const``."""
        norm, c = _normalize_le(coeffs, const)
        if not norm:
            if 0 > c:
                self._mark_unsat([tag])
            return
        self._les.append(LinearConstraint(tuple(sorted(norm.items())), "<=", c, tag))

    def add_ge(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Add ``sum(coeffs) >= const`` as ``-sum <= -const``."""
        self.add_le({v: -c for v, c in coeffs.items()}, -const, tag)

    def add_lt(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Add strict ``sum < const``, i.e. ``sum <= const - 1`` over Z."""
        self.add_le(coeffs, const - 1, tag)

    def add_gt(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Add strict ``sum > const``, i.e. ``sum >= const + 1`` over Z."""
        self.add_ge(coeffs, const + 1, tag)

    def add_eq(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Add ``sum(coeffs) = const`` (with GCD divisibility check)."""
        nonzero = {v: c for v, c in coeffs.items() if c != 0}
        if not nonzero:
            if const != 0:
                self._mark_unsat([tag])
            return
        g = 0
        for c in nonzero.values():
            g = math.gcd(g, abs(c))
        if g > 1:
            if const % g != 0:
                self._mark_unsat([tag])
                return
            nonzero = {v: c // g for v, c in nonzero.items()}
            const //= g
        self._eqs.append(LinearConstraint(tuple(sorted(nonzero.items())), "=", const, tag))

    def add_diseq(self, coeffs: Dict[int, int], const: int, tag: object = None) -> None:
        """Add ``sum(coeffs) != const``."""
        nonzero = {v: c for v, c in coeffs.items() if c != 0}
        if not nonzero:
            if const == 0:
                self._mark_unsat([tag])
            return
        self._diseqs.append(
            LinearConstraint(tuple(sorted(nonzero.items())), "!=", const, tag)
        )

    def _mark_unsat(self, core: List[object]) -> None:
        if self._trivially_unsat is None:
            self._trivially_unsat = [t for t in core if t is not None]

    # -- solving ------------------------------------------------------------------

    def check(self) -> LiaResult:
        """Decide the conjunction; returns model or conflict core.

        Query counts, verdicts, branch-and-bound effort, and wall time go
        to the default metrics registry (no-op unless a session installed
        a live one).
        """
        registry = default_registry()
        if not registry.enabled:
            return self._check()
        start = perf_counter()
        result = self._check()
        registry.counter("lia.checks").inc()
        registry.counter("lia.sat" if result.sat else "lia.unsat").inc()
        registry.counter("lia.branches").inc(result.branches)
        if self.presolve_hit:
            registry.counter("lia.presolve_conflicts").inc()
        registry.histogram("lia.check_seconds").observe(perf_counter() - start)
        return result

    def _check(self) -> LiaResult:
        self.presolve_hit = False
        if self._trivially_unsat is not None:
            return LiaResult(sat=False, core=list(self._trivially_unsat))

        if self._presolve:
            conflict_core = self._interval_presolve()
            if conflict_core is not None:
                self.presolve_hit = True
                return LiaResult(sat=False, core=conflict_core)

        sx = Simplex(max_pivots=self._max_pivots)
        var_map: List[int] = [sx.new_var() for _ in self._names]
        # one slack row per distinct linear form
        form_slack: Dict[Tuple[Tuple[int, int], ...], int] = {}

        def slack_for(coeffs: Tuple[Tuple[int, int], ...]) -> int:
            s = form_slack.get(coeffs)
            if s is None:
                s = sx.add_row({var_map[v]: Fraction(c) for v, c in coeffs})
                form_slack[coeffs] = s
            return s

        conflict: Optional[List[object]] = None
        for con in self._les:
            s = slack_for(con.coeffs)
            conflict = sx.assert_upper(s, Fraction(con.const), con.tag)
            if conflict:
                break
        if conflict is None:
            for con in self._eqs:
                s = slack_for(con.coeffs)
                conflict = sx.assert_upper(s, Fraction(con.const), con.tag)
                if conflict:
                    break
                conflict = sx.assert_lower(s, Fraction(con.const), con.tag)
                if conflict:
                    break
        if conflict:
            return LiaResult(sat=False, core=[t for t in conflict if t is not None])

        diseq_slacks = [(slack_for(d.coeffs), d) for d in self._diseqs]
        budget = [self._max_branches]
        result = self._branch(sx, var_map, diseq_slacks, budget, depth=0)
        result.branches = self._max_branches - budget[0]
        return result

    def _interval_presolve(self) -> Optional[List[object]]:
        """Interval propagation; a conflict core when provably UNSAT."""
        from .intervals import BoundsAnalysis

        ba = BoundsAnalysis(num_vars=len(self._names))
        for con in self._les:
            ba.add_le(con.coeff_dict(), con.const, con.tag)
        for con in self._eqs:
            ba.add_eq(con.coeff_dict(), con.const, con.tag)
        core = ba.propagate()
        if core is None:
            return None
        return [t for t in core if t is not None]

    # -- branch & bound -------------------------------------------------------------

    def _branch(
        self,
        sx: Simplex,
        var_map: List[int],
        diseq_slacks: List[Tuple[int, LinearConstraint]],
        budget: List[int],
        depth: int,
    ) -> LiaResult:
        if budget[0] <= 0:
            raise ResourceLimitError("LIA branch budget exhausted")
        if depth > 400:
            raise ResourceLimitError("LIA branch depth exceeded")
        budget[0] -= 1

        res = sx.check()
        if not res.sat:
            return LiaResult(sat=False, core=[t for t in res.core if t is not None])

        # 1) branch on a fractional problem variable
        for i, sv in enumerate(var_map):
            val = res.model[sv]
            if val.denominator != 1:
                floor_v = Fraction(math.floor(val))
                branch_tag = ("branch-int", self._names[i])
                return self._split(
                    sx, var_map, diseq_slacks, budget, depth,
                    sv, floor_v, floor_v + 1, branch_tag, extra_core=[],
                )

        # 2) all problem vars integral; check disequalities
        violated = [
            (sv, con) for sv, con in diseq_slacks if res.model[sv] == con.const
        ]
        if violated:
            # Greedy batch repair first: assert one side of EVERY violated
            # disequality in a single pass (consistently "below"), then
            # recurse once.  For the common many-distinct-variables shape
            # this avoids the exponential per-diseq branch tree; on failure
            # fall back to sound two-way branching on the first violation.
            if len(violated) > 1:
                snap = sx.snapshot()
                ok = True
                for sv, con in violated:
                    tag = ("branch-diseq", con.tag)
                    conflict = sx.assert_upper(sv, Fraction(con.const - 1), tag)
                    if conflict is not None:
                        conflict = sx.assert_lower(
                            sv, Fraction(con.const + 1), tag
                        )
                        if conflict is not None:
                            ok = False
                            break
                if ok:
                    attempt = self._branch(
                        sx, var_map, diseq_slacks, budget, depth + 1
                    )
                    if attempt.sat:
                        return attempt
                sx.restore(snap)
            sv, con = violated[0]
            branch_tag = ("branch-diseq", con.tag)
            return self._split(
                sx, var_map, diseq_slacks, budget, depth,
                sv, Fraction(con.const - 1), Fraction(con.const + 1),
                branch_tag,
                extra_core=[con.tag] if con.tag is not None else [],
            )

        model = {i: int(res.model[sv]) for i, sv in enumerate(var_map)}
        return LiaResult(sat=True, model=model)

    def _split(
        self,
        sx: Simplex,
        var_map: List[int],
        diseq_slacks: List[Tuple[int, LinearConstraint]],
        budget: List[int],
        depth: int,
        split_var: int,
        upper_val: Fraction,
        lower_val: Fraction,
        branch_tag: object,
        extra_core: List[object],
    ) -> LiaResult:
        """Try ``split_var <= upper_val`` then ``split_var >= lower_val``."""
        snap = sx.snapshot()
        cores: List[object] = []

        conflict = sx.assert_upper(split_var, upper_val, branch_tag)
        if conflict is None:
            left = self._branch(sx, var_map, diseq_slacks, budget, depth + 1)
            if left.sat:
                return left
            cores.extend(left.core)
        else:
            cores.extend(conflict)
        sx.restore(snap)

        conflict = sx.assert_lower(split_var, lower_val, branch_tag)
        if conflict is None:
            right = self._branch(sx, var_map, diseq_slacks, budget, depth + 1)
            if right.sat:
                return right
            cores.extend(right.core)
        else:
            cores.extend(conflict)
        sx.restore(snap)

        seen: Set[object] = set()
        core: List[object] = []
        for t in cores + extra_core:
            if t is None or (isinstance(t, tuple) and t and t[0] in ("branch-int", "branch-diseq")):
                continue
            key = t
            try:
                if key in seen:
                    continue
                seen.add(key)
            except TypeError:
                pass
            core.append(t)
        return LiaResult(sat=False, core=core)
