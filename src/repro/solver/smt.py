"""SMT solver facade: quantifier-free linear integer arithmetic + EUF.

This module glues the components of the from-scratch solver into the
standard ``assert / check / model`` interface used by the rest of the
library:

- :mod:`.terms` — hash-consed formula representation,
- :mod:`.cnf` + :mod:`.sat` — boolean reasoning (CDCL),
- :mod:`.lia` — conjunctive linear integer arithmetic,
- Ackermann's reduction — uninterpreted functions become fresh integer
  variables plus functional-consistency constraints, a classical complete
  encoding of EUF into equality logic for quantifier-free formulas.

The check loop is *lazy SMT*: the SAT solver proposes boolean models, the
LIA solver refutes theory-inconsistent ones with blocking clauses built from
conflict cores, until either a theory-consistent model emerges or the
boolean abstraction is exhausted.

Every satisfiable answer is *verified* by evaluating all assertions under
the constructed model (see :mod:`.evalmodel`), so a bug anywhere in the
solver stack surfaces as a loud :class:`~repro.errors.SolverError` instead
of a silently wrong test input.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from time import perf_counter

from ..errors import ResourceLimitError, SolverError
from ..faults import current_fault_plan
from ..obs.journal import current_journal
from ..obs.metrics import default_registry
from .budget import current_budget
from .cache import CachedResult, default_cache
from .cnf import CnfConverter
from .lia import LiaSolver
from .sat import SatSolver
from .terms import (
    CanonicalQuery,
    FunctionSymbol,
    Kind,
    Sort,
    Term,
    TermManager,
    canonical_query,
)

__all__ = ["Solver", "Model", "CheckResult", "ackermannize", "check_theory"]


@dataclass
class Model:
    """A first-order model: integer variables plus finite UF tables.

    ``functions`` maps each uninterpreted symbol to a finite table of
    ``args -> value`` entries; ``default`` is returned for unlisted points
    (the solver is free to choose it, mirroring the paper's observation that
    a satisfiability check "invents" function behaviour outside recorded
    points).
    """

    ints: Dict[str, int] = field(default_factory=dict)
    bools: Dict[str, bool] = field(default_factory=dict)
    functions: Dict[FunctionSymbol, Dict[Tuple[int, ...], int]] = field(
        default_factory=dict
    )
    default: int = 0

    def int_value(self, name: str) -> int:
        """Value of an integer variable (0 when unconstrained)."""
        return self.ints.get(name, self.default)

    def apply(self, fn: FunctionSymbol, args: Tuple[int, ...]) -> int:
        """Value of ``fn(args)`` under this model."""
        return self.functions.get(fn, {}).get(args, self.default)

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.ints.items())]
        parts += [f"{k}={v}" for k, v in sorted(self.bools.items())]
        for fn, table in self.functions.items():
            for args, val in sorted(table.items()):
                inner = ",".join(map(str, args))
                parts.append(f"{fn.name}({inner})={val}")
        return "{" + ", ".join(parts) + "}"


@dataclass
class CheckResult:
    """Outcome of :meth:`Solver.check`."""

    sat: bool
    model: Optional[Model] = None
    #: Number of lazy-loop iterations (SAT models proposed).
    iterations: int = 0


def eliminate_int_ite(tm: TermManager, term: Term) -> Tuple[Term, List[Term]]:
    """Pull integer-sorted ITE nodes out of ``term``.

    Each ``ite(c, a, b) : Int`` becomes a fresh variable ``v`` with side
    conditions ``c => v = a`` and ``not c => v = b``.  Returns the rewritten
    term and the side conditions (which the caller must also assert).
    """
    sides: List[Term] = []
    cache: Dict[Term, Term] = {}

    def walk(t: Term) -> Term:
        cached = cache.get(t)
        if cached is not None:
            return cached
        if not t.args:
            cache[t] = t
            return t
        new_args = tuple(walk(a) for a in t.args)
        if t.kind is Kind.ITE and t.sort is Sort.INT:
            cond, then_t, else_t = new_args
            fresh = tm.fresh_var("_ite")
            sides.append(tm.mk_implies(cond, tm.mk_eq(fresh, then_t)))
            sides.append(tm.mk_implies(tm.mk_not(cond), tm.mk_eq(fresh, else_t)))
            result = fresh
        elif new_args == t.args:
            result = t
        else:
            result = tm._rebuild(t, new_args)
        cache[t] = result
        return result

    rewritten = walk(term)
    return rewritten, sides


def ackermannize(
    tm: TermManager, formulas: Sequence[Term]
) -> Tuple[List[Term], Dict[Term, Term], List[Term]]:
    """Ackermann's reduction: replace UF applications by fresh variables.

    Returns ``(rewritten_formulas, app_to_var, consistency_constraints)``.
    Applications are processed innermost-first so that nested applications
    like ``h(h(x))`` are handled correctly: the outer application's argument
    list refers to the *rewritten* inner application variable, and the
    functional-consistency constraints compare rewritten arguments.

    For every pair of applications of the same symbol::

        (arg1 = arg1' and ... and argN = argN') => a_i = a_j
    """
    # Collect all applications across all formulas, innermost first (by the
    # manager's creation order: children always have smaller ids).
    apps: List[Term] = []
    seen: Set[Term] = set()
    for f in formulas:
        for t in f.iter_dag():
            if t.is_app and t not in seen:
                seen.add(t)
                apps.append(t)
    apps.sort(key=lambda t: t.tid)

    app_to_var: Dict[Term, Term] = {}
    rewritten_args: Dict[Term, Tuple[Term, ...]] = {}
    mapping: Dict[Term, Term] = {}
    for app in apps:
        new_args = tuple(tm.substitute(a, mapping) for a in app.args)
        assert app.fn is not None
        var = tm.fresh_var(f"_app_{app.fn.name}_")
        app_to_var[app] = var
        rewritten_args[app] = new_args
        mapping[app] = var

    constraints: List[Term] = []
    by_fn: Dict[FunctionSymbol, List[Term]] = {}
    for app in apps:
        assert app.fn is not None
        by_fn.setdefault(app.fn, []).append(app)
    for fn, fn_apps in by_fn.items():
        for a1, a2 in itertools.combinations(fn_apps, 2):
            args1, args2 = rewritten_args[a1], rewritten_args[a2]
            if any(
                x is not y and x.is_const and y.is_const
                for x, y in zip(args1, args2)
            ):
                # Some argument position holds two distinct constants, so the
                # implication's antecedent folds to false and the constraint
                # is vacuously true — skip building it.  Recorded samples
                # apply functions to concrete points, so almost every pair is
                # of this shape.
                continue
            arg_eqs = [tm.mk_eq(x, y) for x, y in zip(args1, args2)]
            constraints.append(
                tm.mk_implies(
                    tm.mk_and(*arg_eqs), tm.mk_eq(app_to_var[a1], app_to_var[a2])
                )
            )

    new_formulas = [tm.substitute(f, mapping) for f in formulas]
    return new_formulas, app_to_var, constraints


def check_theory(
    tm: TermManager, literals: List[Tuple[Term, bool]]
) -> Tuple[bool, List[Tuple[Term, bool]], Dict[str, int]]:
    """Check a conjunction of arithmetic literals with the LIA solver.

    Returns ``(sat, conflict_core, int_model)`` where the core entries are
    (atom, polarity) pairs from the input.  Shared by the from-scratch
    :class:`Solver` and the incremental
    :class:`~repro.solver.session.SolverSession`.  Branch and pivot limits
    come from the ambient :func:`~repro.solver.budget.current_budget`.
    """
    budget = current_budget()
    lia = LiaSolver(
        max_branches=budget.max_branches, max_pivots=budget.max_pivots
    )
    var_ids: Dict[Term, int] = {}

    def var_id(v: Term) -> int:
        idx = var_ids.get(v)
        if idx is None:
            idx = lia.new_var(v.name or f"t{v.tid}")
            var_ids[v] = idx
        return idx

    for atom, pol in literals:
        if atom.kind is Kind.CONST_BOOL:
            if bool(atom.value) != pol:
                return False, [(atom, pol)], {}
            continue
        lhs, rhs = atom.args
        coeffs_l, const_l = tm.linearize(lhs)
        coeffs_r, const_r = tm.linearize(rhs)
        # lhs - rhs OP 0  =>  sum coeffs <= / = / != (const_r - const_l)
        coeffs: Dict[int, int] = {}
        for t, c in coeffs_l.items():
            coeffs[var_id(t)] = coeffs.get(var_id(t), 0) + int(c)
        for t, c in coeffs_r.items():
            coeffs[var_id(t)] = coeffs.get(var_id(t), 0) - int(c)
        const = int(const_r - const_l)
        tag = (atom, pol)
        if atom.kind is Kind.EQ:
            if pol:
                lia.add_eq(coeffs, const, tag)
            else:
                lia.add_diseq(coeffs, const, tag)
        elif atom.kind is Kind.LE:
            if pol:
                lia.add_le(coeffs, const, tag)
            else:
                lia.add_gt(coeffs, const, tag)
        elif atom.kind is Kind.LT:
            if pol:
                lia.add_lt(coeffs, const, tag)
            else:
                lia.add_ge(coeffs, const, tag)
        else:
            raise SolverError(f"unsupported theory atom {atom}")

    result = lia.check()
    if result.sat:
        model = {
            v.name or f"t{v.tid}": result.model.get(idx, 0)
            for v, idx in var_ids.items()
        }
        return True, [], model
    core = [t for t in result.core if isinstance(t, tuple) and len(t) == 2]
    if not core:
        core = list(literals)
    return False, core, {}


def result_to_cache_entry(result: CheckResult, cq: CanonicalQuery) -> CachedResult:
    """Project a :class:`CheckResult` onto the canonical numbering of ``cq``."""
    if not result.sat or result.model is None:
        return CachedResult(sat=False, iterations=result.iterations)
    int_idx: Dict[str, int] = {}
    bool_idx: Dict[str, int] = {}
    for idx, var in enumerate(cq.variables):
        name = var.name or ""
        if var.sort is Sort.INT:
            int_idx.setdefault(name, idx)
        else:
            bool_idx.setdefault(name, idx)
    fn_idx = {fn: i for i, fn in enumerate(cq.functions)}
    model = result.model
    return CachedResult(
        sat=True,
        iterations=result.iterations,
        int_values={
            int_idx[n]: v for n, v in model.ints.items() if n in int_idx
        },
        bool_values={
            bool_idx[n]: v for n, v in model.bools.items() if n in bool_idx
        },
        tables={
            fn_idx[fn]: dict(table)
            for fn, table in model.functions.items()
            if fn in fn_idx
        },
        default=model.default,
    )


def cache_entry_to_result(entry: CachedResult, cq: CanonicalQuery) -> CheckResult:
    """Rename a cached canonical result back onto the asking query's leaves."""
    if not entry.sat:
        return CheckResult(sat=False, iterations=entry.iterations)
    model = Model(default=entry.default)
    for idx, value in entry.int_values.items():
        model.ints[cq.variables[idx].name or ""] = value
    for idx, value in entry.bool_values.items():
        model.bools[cq.variables[idx].name or ""] = value
    for fidx, table in entry.tables.items():
        model.functions[cq.functions[fidx]] = dict(table)
    return CheckResult(sat=True, model=model, iterations=entry.iterations)


class Solver:
    """Incremental-feeling SMT solver for QF linear integer arithmetic + EUF.

    Usage::

        tm = TermManager()
        s = Solver(tm)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        h = tm.mk_function("h", 1)
        s.add(tm.mk_eq(x, tm.mk_app(h, [y])))
        result = s.check()
        assert result.sat

    ``push``/``pop`` provide assertion scoping; each :meth:`check` call
    re-encodes from scratch (simple and robust at this project's scale).
    """

    def __init__(
        self,
        manager: Optional[TermManager] = None,
        max_iterations: Optional[int] = None,
        max_conflicts: Optional[int] = None,
        verify_models: bool = True,
        use_cache: bool = True,
    ) -> None:
        budget = current_budget()
        self.tm = manager if manager is not None else TermManager()
        self._assertions: List[Term] = []
        self._scopes: List[int] = []
        self._max_iterations = (
            max_iterations if max_iterations is not None else budget.max_iterations
        )
        self._max_conflicts = (
            max_conflicts if max_conflicts is not None else budget.max_conflicts
        )
        self._verify_models = verify_models
        #: consult the process-wide normalized query cache; safe because
        #: every _check re-encodes from scratch (the answer is a pure
        #: function of the asserted formulas)
        self._use_cache = use_cache
        self.last_iterations = 0

    # -- assertion management ---------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean terms."""
        for f in formulas:
            if f.sort is not Sort.BOOL:
                raise SolverError(f"cannot assert non-boolean term {f}")
            self._assertions.append(f)

    def push(self) -> None:
        """Open an assertion scope."""
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        """Close the innermost assertion scope."""
        if not self._scopes:
            raise SolverError("pop without matching push")
        del self._assertions[self._scopes.pop():]

    @property
    def assertions(self) -> List[Term]:
        return list(self._assertions)

    # -- solving -----------------------------------------------------------------

    def check(self, *extra: Term) -> CheckResult:
        """Decide the conjunction of all assertions (plus ``extra``).

        Each query's verdict, lazy-loop iteration count, and wall time are
        recorded into the default metrics registry and emitted as a
        ``solver_query`` event on the current journal (both no-ops unless a
        session installed live sinks).
        """
        registry = default_registry()
        journal = current_journal()
        if not registry.enabled and not journal.enabled:
            return self._check_cached(extra)
        start = perf_counter()
        result = self._check_cached(extra)
        elapsed = perf_counter() - start
        registry.counter("smt.checks").inc()
        registry.counter("smt.sat" if result.sat else "smt.unsat").inc()
        registry.counter("smt.lazy_iterations").inc(result.iterations)
        registry.histogram("smt.check_seconds").observe(elapsed)
        journal.emit(
            "solver_query",
            solver="smt",
            sat=result.sat,
            iterations=result.iterations,
            assertions=len(self._assertions) + len(extra),
            seconds=round(elapsed, 6),
        )
        return result

    def _check_cached(self, extra: Tuple[Term, ...]) -> CheckResult:
        """Answer from the normalized query cache when possible."""
        cache = default_cache() if self._use_cache else None
        if cache is None:
            return self._check(extra)
        goal = list(self._assertions) + list(extra)
        if not goal:
            return CheckResult(sat=True, model=Model())
        cq = canonical_query(goal)
        entry = cache.lookup(cq.key)
        if entry is not None:
            result = cache_entry_to_result(entry, cq)
            self.last_iterations = result.iterations
            return result
        result = self._check(extra)
        cache.store(cq.key, result_to_cache_entry(result, cq))
        return result

    def _check(self, extra: Tuple[Term, ...]) -> CheckResult:
        tm = self.tm
        goal = list(self._assertions) + list(extra)
        if not goal:
            return CheckResult(sat=True, model=Model())
        # fault-injection site: a forced ResourceLimitError here behaves
        # exactly like real budget exhaustion mid-query
        current_fault_plan().fire("solver")

        # 1) eliminate integer ITEs
        flat: List[Term] = []
        for f in goal:
            rewritten, sides = eliminate_int_ite(tm, f)
            flat.append(rewritten)
            flat.extend(sides)

        # 2) Ackermannize UF applications
        pure, app_to_var, consistency = ackermannize(tm, flat)
        all_formulas = pure + consistency

        # 3) boolean encoding
        sat = SatSolver(max_conflicts=self._max_conflicts)
        cnf = CnfConverter(tm, sat)
        for f in all_formulas:
            cnf.assert_formula(f)

        # 4) lazy theory loop
        iterations = 0
        while True:
            iterations += 1
            if iterations > self._max_iterations:
                raise ResourceLimitError(
                    f"lazy SMT loop exceeded {self._max_iterations} iterations"
                )
            sat_result = sat.solve()
            if not sat_result.sat:
                self.last_iterations = iterations
                return CheckResult(sat=False, iterations=iterations)

            literals = cnf.model_literals(sat_result.model)
            theory_lits = [
                (atom, pol) for atom, pol in literals if atom.kind is not Kind.VAR
            ]
            ok, core, int_model = self._check_theory(theory_lits)
            if ok:
                model = self._build_model(
                    tm, sat_result.model, cnf, int_model, app_to_var, flat
                )
                self.last_iterations = iterations
                return CheckResult(sat=True, model=model, iterations=iterations)

            # block this boolean assignment via the conflicting literals
            blocking: List[int] = []
            for atom, pol in core:
                lit = cnf.literal_for(atom)
                blocking.append(-lit if pol else lit)
            if not blocking:
                raise SolverError("theory conflict produced an empty core")
            sat.add_clause(blocking)

    # -- theory checking -------------------------------------------------------------

    def _check_theory(
        self, literals: List[Tuple[Term, bool]]
    ) -> Tuple[bool, List[Tuple[Term, bool]], Dict[str, int]]:
        return check_theory(self.tm, literals)

    # -- model construction ----------------------------------------------------------

    def _build_model(
        self,
        tm: TermManager,
        sat_model: Dict[int, bool],
        cnf: CnfConverter,
        int_model: Dict[str, int],
        app_to_var: Dict[Term, Term],
        original: List[Term],
    ) -> Model:
        model = Model()
        # integer variables mentioned anywhere in the (rewritten) formulas
        for f in original:
            for t in f.iter_dag():
                if t.is_var and t.sort is Sort.INT and t.name is not None:
                    model.ints.setdefault(t.name, int_model.get(t.name, 0))
        for name, value in int_model.items():
            model.ints.setdefault(name, value)
        # boolean atoms that are plain variables
        for atom, svar in cnf.atoms.items():
            if atom.kind is Kind.VAR and atom.sort is Sort.BOOL and svar in sat_model:
                model.bools[atom.name or f"b{atom.tid}"] = sat_model[svar]
        # UF tables from Ackermann variables
        from .evalmodel import evaluate  # local import to avoid a cycle

        for app, var in sorted(app_to_var.items(), key=lambda kv: kv[0].tid):
            assert app.fn is not None
            arg_values = tuple(int(evaluate(a, model)) for a in app.args)
            value = model.ints.get(var.name or "", 0)
            table = model.functions.setdefault(app.fn, {})
            existing = table.get(arg_values)
            if existing is not None and existing != value:
                raise SolverError(
                    f"inconsistent UF table for {app.fn.name}{arg_values}: "
                    f"{existing} vs {value} (Ackermann constraints violated)"
                )
            table[arg_values] = value
        # hide internal helper variables from the user-facing model
        for name in list(model.ints):
            if name.startswith(("_app_", "_ite", "_t")):
                del model.ints[name]

        if self._verify_models:
            self._verify(model, app_to_var)
        return model

    def _verify(self, model: Model, app_to_var: Dict[Term, Term]) -> None:
        from .evalmodel import evaluate

        for f in self._assertions:
            value = evaluate(f, model)
            if value is not True:
                raise SolverError(
                    f"model verification failed: {f} evaluates to {value} "
                    f"under {model}"
                )
