"""TinyVM: a checksum-guarded bytecode interpreter.

The most complete application in the suite, combining every imprecision
shape the paper discusses:

- the six-byte program is integrity-checked against a CRC over all six
  opcode inputs (a 6-ary unknown function to forge);
- the VM loop reads opcodes from an *array* (concrete index, symbolic
  content — the sound case of array handling);
- the dispatcher compares symbolic opcodes against instruction numbers,
  giving deep equality chains;
- one instruction (``CHECK``) hides an error behind an accumulator value
  that only a specific instruction *sequence* produces.

Finding the bug therefore requires simultaneously: a valid checksum
(multi-step CRC forging), a syntactically meaningful opcode sequence, and
a data value steering the accumulator — none of which random testing or
plain concolic testing achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..lang.parser import parse_program
from .hashes import crc32

__all__ = ["TinyVmApp", "build_tinyvm_app", "OPCODES"]

#: instruction set: mnemonic -> opcode number
OPCODES: Dict[str, int] = {
    "HALT": 0,
    "ADD_ARG": 1,   # acc += arg
    "DOUBLE": 2,    # acc *= 2
    "DEC": 3,       # acc -= 1
    "CHECK": 4,     # if acc == 13: error
    "CLEAR": 5,     # acc = 0
}

_CODE_LEN = 6

_SRC = f"""
// TinyVM: CRC-guarded bytecode interpreter ({_CODE_LEN}-byte programs)
int run_vm(int op0, int op1, int op2, int op3, int op4, int op5, int arg) {{
    int code[{_CODE_LEN}];
    code[0] = op0;
    code[1] = op1;
    code[2] = op2;
    code[3] = op3;
    code[4] = op4;
    code[5] = op5;

    int acc = 0;
    int pc = 0;
    while (pc < {_CODE_LEN}) {{
        int instr = code[pc];
        if (instr == 0) {{          // HALT
            return acc;
        }}
        if (instr == 1) {{          // ADD_ARG
            acc = acc + arg;
        }}
        if (instr == 2) {{          // DOUBLE
            acc = acc * 2;
        }}
        if (instr == 3) {{          // DEC
            acc = acc - 1;
        }}
        if (instr == 4) {{          // CHECK
            if (acc == 13) {{
                error("vm bug: accumulator reached the magic value");
            }}
        }}
        if (instr == 5) {{          // CLEAR
            acc = 0;
        }}
        pc = pc + 1;
    }}
    return acc;
}}

int main(int op0, int op1, int op2, int op3, int op4, int op5,
         int arg, int checksum) {{
    int expected = vmcrc(op0, op1, op2, op3, op4, op5);
    if (checksum != expected) {{
        return 0 - 1;               // corrupted bytecode: rejected
    }}
    return run_vm(op0, op1, op2, op3, op4, op5, arg);
}}
"""


@dataclass
class TinyVmApp:
    """A ready-to-test TinyVM bundle."""

    program: Program
    entry: str
    code_len: int
    input_names: Tuple[str, ...]

    def fresh_natives(self) -> NativeRegistry:
        registry = NativeRegistry()
        registry.register(
            "vmcrc",
            lambda *ops: crc32([(o & 0xFF) + 1 for o in ops]) % 65521,
            arity=self.code_len,
        )
        return registry

    def checksum_of(self, opcodes: Sequence[int]) -> int:
        """The valid checksum for an opcode sequence (oracle helper)."""
        return self.fresh_natives().lookup("vmcrc")(*opcodes)

    def initial_inputs(
        self, opcodes: Sequence[int] = (), arg: int = 0, checksum: int = 0
    ) -> Dict[str, int]:
        ops = list(opcodes) + [0] * (self.code_len - len(opcodes))
        inputs = {f"op{i}": ops[i] for i in range(self.code_len)}
        inputs["arg"] = arg
        inputs["checksum"] = checksum
        return inputs

    def valid_inputs(
        self, opcodes: Sequence[int], arg: int = 0
    ) -> Dict[str, int]:
        """Inputs carrying a correct checksum (for concrete testing)."""
        ops = list(opcodes) + [0] * (self.code_len - len(opcodes))
        return self.initial_inputs(ops, arg, self.checksum_of(ops))


def build_tinyvm_app() -> TinyVmApp:
    """Build the TinyVM application."""
    program = parse_program(_SRC)
    names = tuple(
        [f"op{i}" for i in range(_CODE_LEN)] + ["arg", "checksum"]
    )
    return TinyVmApp(
        program=program, entry="main", code_len=_CODE_LEN, input_names=names
    )
