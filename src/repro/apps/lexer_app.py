"""The paper's Section 7 application: a lexer using a hash for keywords.

Compilers and interpreters recognize keywords by comparing the hash of an
input chunk against pre-computed keyword hashes (the flex code of the
paper's Figure 4).  This defeats ordinary concolic testing — a hash cannot
be inverted by a constraint solver — so test generation never reaches the
parser stages behind the lexer.  Higher-order test generation inverts the
hash *through its recorded samples*: during initialization the program
hashes every keyword, each call records a sample, and the theory of
equality plus those samples lets the validity engine produce input chunks
that hash to any keyword's value.

Two program variants are provided:

- :func:`build_lexer_program` — keyword recognition via hash-value
  comparisons (``if (hv == h_kw) ...``), the pattern §7 targets, plus a
  character-verification (strcmp-like) guard and a parser stage with deep
  branches and a buried bug;
- :func:`build_table_lexer_program` — the literal Figure 4 shape with a
  symbol *table* indexed by the hash value.  Indexing an array at a
  symbolic position is store-dependent and concretized even in
  higher-order mode, so this variant measures how much of §7's benefit
  survives when the lookup itself is opaque (an ablation the paper's
  prose anticipates in §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..lang.parser import parse_program
from .hashes import flex_hash, word_to_codes

__all__ = [
    "DEFAULT_KEYWORDS",
    "LexerApp",
    "build_lexer_program",
    "build_hardcoded_lexer_program",
    "build_table_lexer_program",
    "keyword_hashes",
]

#: keywords of the toy command language (all fit the default width of 4)
DEFAULT_KEYWORDS: Tuple[str, ...] = (
    "if", "for", "int", "set", "and", "or", "not", "ret", "end",
)

#: token ids: 0 = identifier, keywords from 1
TOK_IDENT = 0


def keyword_hashes(
    keywords: Sequence[str], width: int, table_size: int
) -> Dict[str, int]:
    """Concrete flex-hash value of each keyword (for oracle checks)."""
    return {
        kw: flex_hash(word_to_codes(kw, width), table_size) for kw in keywords
    }


@dataclass
class LexerApp:
    """A ready-to-test lexer application bundle."""

    program: Program
    natives: NativeRegistry
    entry: str
    width: int
    keywords: Tuple[str, ...]
    table_size: int
    #: inputs: character-code variables plus the parser argument
    input_names: Tuple[str, ...]

    def initial_inputs(self, word: str = "", arg: int = 0) -> Dict[str, int]:
        codes = word_to_codes(word, self.width)
        inputs = {f"c{i}": codes[i] for i in range(self.width)}
        inputs["arg"] = arg
        return inputs

    def fresh_natives(self) -> NativeRegistry:
        """A new registry with the same hash (clean call log)."""
        registry = NativeRegistry()
        registry.register(
            "flex_hash",
            lambda *codes: flex_hash(codes, self.table_size),
            arity=self.width,
        )
        return registry


def _char_list(width: int) -> str:
    return ", ".join(f"int c{i}" for i in range(width))


def _char_args(width: int) -> str:
    return ", ".join(f"c{i}" for i in range(width))


def _init_hashes(keywords: Sequence[str], width: int) -> str:
    """MiniC statements computing each keyword's hash at startup.

    Each call hashes constant character codes: concretely executed, and —
    crucially — *sampled* by the concolic machine, populating the IOF
    table exactly as §7 prescribes.
    """
    lines = []
    for idx, kw in enumerate(keywords):
        codes = word_to_codes(kw, width)
        args = ", ".join(str(c) for c in codes)
        lines.append(f"    int h_{kw} = flex_hash({args});")
    return "\n".join(lines)


def build_lexer_program(
    keywords: Sequence[str] = DEFAULT_KEYWORDS,
    width: int = 4,
    table_size: int = 1 << 14,
) -> LexerApp:
    """The §7 lexer: keyword recognition by hash comparison + char check.

    Program structure::

        findsym: hash the chunk, compare against each keyword hash;
                 on a hash match, verify the characters (collision guard)
        main:    token = findsym(chunk);
                 parser stage: dispatch on token with nested conditions;
                 a bug sits behind token == 'ret' && arg == 99
    """
    for kw in keywords:
        if len(kw) > width:
            raise ValueError(f"keyword {kw!r} exceeds width {width}")
    chars = _char_list(width)
    args = _char_args(width)

    find_branches = []
    for idx, kw in enumerate(keywords):
        codes = word_to_codes(kw, width)
        verify = " && ".join(
            f"c{i} == {codes[i]}" for i in range(width)
        )
        find_branches.append(
            f"""    if (hv == h_{kw}) {{
        // strcmp-style verification guards against hash collisions
        if ({verify}) {{
            return {idx + 1};
        }}
    }}"""
        )
    find_body = "\n".join(find_branches)

    tok_of = {kw: i + 1 for i, kw in enumerate(keywords)}
    source = f"""
// Auto-generated Section-7 lexer application
// keywords: {", ".join(keywords)} (width {width}, table size {table_size})

int findsym({chars}) {{
{_init_hashes(keywords, width)}
    int hv = flex_hash({args});
{find_body}
    return {TOK_IDENT};
}}

int parse_stage(int token, int arg) {{
    int state = 0;
    if (token == {tok_of.get("set", 0)}) {{
        state = arg + 1;
        if (state > 100) {{
            return 2;
        }}
        return 1;
    }}
    if (token == {tok_of.get("if", 0)}) {{
        if (arg < 0) {{
            return 3;
        }}
        return 4;
    }}
    if (token == {tok_of.get("and", 0)} || token == {tok_of.get("or", 0)}) {{
        if (arg == 0) {{
            return 5;
        }}
        return 6;
    }}
    if (token == {tok_of.get("ret", 0)}) {{
        if (arg == 99) {{
            error("bug buried behind the lexer");
        }}
        return 7;
    }}
    if (token == {tok_of.get("end", 0)}) {{
        return 8;
    }}
    return 0;
}}

int main({chars}, int arg) {{
    int token = findsym({args});
    int outcome = parse_stage(token, arg);
    return outcome;
}}
"""
    program = parse_program(source)
    registry = NativeRegistry()
    registry.register(
        "flex_hash", lambda *codes: flex_hash(codes, table_size), arity=width
    )
    return LexerApp(
        program=program,
        natives=registry,
        entry="main",
        width=width,
        keywords=tuple(keywords),
        table_size=table_size,
        input_names=tuple([f"c{i}" for i in range(width)] + ["arg"]),
    )


def build_hardcoded_lexer_program(
    keywords: Sequence[str] = DEFAULT_KEYWORDS,
    width: int = 4,
    table_size: int = 1 << 14,
) -> LexerApp:
    """§7 last paragraph: keyword hash values *hard-coded* in the source.

    The program never calls the hash on the keywords itself, so a single
    execution observes no keyword samples and higher-order generation
    starts blind.  The paper's remedy — "learn pairs over time by starting
    the testing session with a representative set of well-formed inputs" —
    is exactly the cross-run learning experiment: priming the
    :class:`~repro.core.SampleStore` from a keyword corpus restores the
    inversion power.
    """
    for kw in keywords:
        if len(kw) > width:
            raise ValueError(f"keyword {kw!r} exceeds width {width}")
    chars = _char_list(width)
    args = _char_args(width)
    hashes = keyword_hashes(keywords, width, table_size)

    find_branches = []
    for idx, kw in enumerate(keywords):
        codes = word_to_codes(kw, width)
        verify = " && ".join(f"c{i} == {codes[i]}" for i in range(width))
        find_branches.append(
            f"""    if (hv == {hashes[kw]}) {{
        if ({verify}) {{
            return {idx + 1};
        }}
    }}"""
        )
    find_body = "\n".join(find_branches)
    tok_of = {kw: i + 1 for i, kw in enumerate(keywords)}

    source = f"""
// Auto-generated hard-coded-hash lexer (paper §7, last paragraph)
int findsym({chars}) {{
    int hv = flex_hash({args});
{find_body}
    return {TOK_IDENT};
}}

int main({chars}, int arg) {{
    int token = findsym({args});
    if (token == {tok_of.get("ret", 0)}) {{
        if (arg == 99) {{
            error("bug behind hard-coded hashes");
        }}
        return 7;
    }}
    if (token == {tok_of.get("set", 0)}) {{
        return 1;
    }}
    return 0;
}}
"""
    program = parse_program(source)
    registry = NativeRegistry()
    registry.register(
        "flex_hash", lambda *codes: flex_hash(codes, table_size), arity=width
    )
    return LexerApp(
        program=program,
        natives=registry,
        entry="main",
        width=width,
        keywords=tuple(keywords),
        table_size=table_size,
        input_names=tuple([f"c{i}" for i in range(width)] + ["arg"]),
    )


def build_table_lexer_program(
    keywords: Sequence[str] = DEFAULT_KEYWORDS,
    width: int = 4,
    table_size: int = 64,
) -> LexerApp:
    """The literal Figure-4 shape: a symbol table indexed by the hash.

    ``addsym`` populates ``table[hash(kw)] = token`` at startup; ``findsym``
    reads ``table[hash(chunk)]``.  The symbolic-index read is concretized
    (with pins) in every mode, so this variant quantifies the limits of
    automatic hash inversion when the lookup is an opaque store operation.
    """
    for kw in keywords:
        if len(kw) > width:
            raise ValueError(f"keyword {kw!r} exceeds width {width}")
    chars = _char_list(width)
    args = _char_args(width)

    add_lines = []
    for idx, kw in enumerate(keywords):
        codes = word_to_codes(kw, width)
        call = ", ".join(str(c) for c in codes)
        add_lines.append(f"    table[flex_hash({call})] = {idx + 1};")
    adds = "\n".join(add_lines)

    tok_of = {kw: i + 1 for i, kw in enumerate(keywords)}
    source = f"""
// Auto-generated Figure-4-style symbol-table lexer
int main({chars}, int arg) {{
    int table[{table_size}];
{adds}
    int hv = flex_hash({args});
    int token = table[hv];
    if (token == {tok_of.get("ret", 0)}) {{
        if (arg == 99) {{
            error("bug behind the table lexer");
        }}
        return 7;
    }}
    if (token == {tok_of.get("set", 0)}) {{
        return 1;
    }}
    return 0;
}}
"""
    program = parse_program(source)
    registry = NativeRegistry()
    registry.register(
        "flex_hash", lambda *codes: flex_hash(codes, table_size), arity=width
    )
    return LexerApp(
        program=program,
        natives=registry,
        entry="main",
        width=width,
        keywords=tuple(keywords),
        table_size=table_size,
        input_names=tuple([f"c{i}" for i in range(width)] + ["arg"]),
    )
