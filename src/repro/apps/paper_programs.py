"""Every example program from the paper, as MiniC source.

Each entry pairs the MiniC transliteration with the section of the paper it
comes from and the concrete setup (initial inputs, hash behaviour) the
paper assumes.  The experiment suite and benchmarks consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..lang.natives import NativeRegistry
from ..lang.parser import parse_program
from ..lang.ast import Program

__all__ = [
    "PaperExample",
    "OBSCURE_SRC",
    "FOO_SRC",
    "FOO_BIS_SRC",
    "BAR_SRC",
    "PUB_SRC",
    "EX5_SRC",
    "EX6_SRC",
    "DELAYED_SRC",
    "PAPER_EXAMPLES",
    "paper_hash",
    "make_paper_natives",
]


def paper_hash(y: int) -> int:
    """A concrete 'unknown' hash matching the paper's narrative values.

    The paper assumes hash(42) = 567, hash(33) = 123 (Example 3) and
    hash(1) = 5 (Example 4); values elsewhere are an arbitrary-but-
    deterministic mix the solver cannot see into.
    """
    if y == 42:
        return 567
    if y == 33:
        return 123
    if y == 1:
        return 5
    return (y * 2654435761 + 40503) % 65521


def make_paper_natives() -> NativeRegistry:
    """Fresh registry exposing :func:`paper_hash` as native ``hash``."""
    registry = NativeRegistry()
    registry.register("hash", paper_hash, arity=1)
    return registry


OBSCURE_SRC = """
// Paper Section 1: the motivating example. Static test generation is
// "helpless"; dynamic test generation covers both branches.
int obscure(int x, int y) {
    if (x == hash(y)) {
        error("obscure reached");   // return -1 in the paper
    }
    return 0;
}
"""

FOO_SRC = """
// Paper Sections 3.2 / 3.3 / Example 7: the divergence & multi-step example.
int foo(int x, int y) {
    if (x == hash(y)) {
        if (y == 10) {
            error("foo bug");       // return -1 in the paper
        }
    }
    return 0;
}
"""

FOO_BIS_SRC = """
// Paper Example 2: unsound concretization finds this via a "good
// divergence"; sound concretization provably cannot.
int foo_bis(int x, int y) {
    if (x != hash(y)) {
        if (y == 10) {
            error("foo_bis bug");
        }
    }
    return 0;
}
"""

BAR_SRC = """
// Paper Example 3: unsound concretization diverges; higher-order test
// generation proves no test exists (the formula is invalid).
int bar(int x, int y) {
    if (x == hash(y) && y == hash(x)) {
        error("bar bug");
    }
    return 0;
}
"""

PUB_SRC = """
// Paper Example 4: without samples the POST formula is invalid; the
// recorded pair makes it valid.
int pub(int x, int y) {
    if (hash(x) > 0 && y == 10) {
        error("pub bug");
    }
    return 0;
}
"""

EX5_SRC = """
// Paper Example 5 (as a program): covering the then branch needs the
// EUF axiom strategy "set x = y".
int euf_eq(int x, int y) {
    if (hash(x) == hash(y)) {
        error("euf_eq reached");
    }
    return 0;
}
"""

EX6_SRC = """
// Paper Example 6 (as a program): f(x) = f(y) + 1 requires the sampled
// antecedent to prove validity.
int succ_link(int x, int y) {
    if (hash(x) == hash(y) + 1) {
        error("succ_link reached");
    }
    return 0;
}
"""

DELAYED_SRC = """
// Paper Section 3.3 (end): the delayed-concretization example. The hash
// value is computed but never tested, so delayed sound concretization
// should still negate (y == 10).
int delayed(int x, int y) {
    int v = hash(y);
    if (y == 10) {
        error("delayed bug");
    }
    return v;
}
"""


@dataclass
class PaperExample:
    """A paper example: program, setup, and the claimed outcomes."""

    name: str
    section: str
    source: str
    entry: str
    initial_inputs: Dict[str, int]
    #: outcome claims, per engine, used by tests and EXPERIMENTS.md:
    #: mode name -> dict(finds_error=..., diverges=...)
    claims: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def program(self) -> Program:
        return parse_program(self.source)

    def natives(self) -> NativeRegistry:
        return make_paper_natives()


PAPER_EXAMPLES: Dict[str, PaperExample] = {
    "obscure": PaperExample(
        name="obscure",
        section="§1",
        source=OBSCURE_SRC,
        entry="obscure",
        initial_inputs={"x": 33, "y": 42},
        claims={
            "unsound": {"finds_error": True},
            "sound": {"finds_error": True},
            "higher_order": {"finds_error": True},
            "static": {"finds_error": False},
        },
    ),
    "foo": PaperExample(
        name="foo",
        section="§3.2/§3.3/Ex.7",
        source=FOO_SRC,
        entry="foo",
        initial_inputs={"x": 33, "y": 42},
        claims={
            "unsound": {"finds_error": False, "diverges": True},
            "sound": {"finds_error": False, "diverges": False},
            "higher_order": {"finds_error": True, "multi_step": True},
        },
    ),
    "foo_bis": PaperExample(
        name="foo_bis",
        section="Ex.2",
        source=FOO_BIS_SRC,
        entry="foo_bis",
        initial_inputs={"x": 33, "y": 42},
        claims={
            "unsound": {"finds_error": True, "diverges": True},  # good divergence
            "sound": {"finds_error": False},
            "higher_order": {"finds_error": True},
        },
    ),
    "bar": PaperExample(
        name="bar",
        section="Ex.3",
        source=BAR_SRC,
        entry="bar",
        initial_inputs={"x": 33, "y": 42},
        claims={
            "unsound": {"finds_error": False, "diverges": True},  # bad divergence
            "higher_order": {"finds_error": False, "diverges": False},
        },
    ),
    "pub": PaperExample(
        name="pub",
        section="Ex.4",
        source=PUB_SRC,
        entry="pub",
        initial_inputs={"x": 1, "y": 2},
        claims={
            "sound": {"finds_error": True},
            "higher_order": {"finds_error": True},
            "higher_order_no_antecedent": {"finds_error": False},
        },
    ),
    "euf_eq": PaperExample(
        name="euf_eq",
        section="Ex.5",
        source=EX5_SRC,
        entry="euf_eq",
        initial_inputs={"x": 3, "y": 4},
        claims={
            "sound": {"finds_error": False},
            "higher_order": {"finds_error": True},
        },
    ),
    "succ_link": PaperExample(
        name="succ_link",
        section="Ex.6",
        source=EX6_SRC,
        entry="succ_link",
        initial_inputs={"x": 3, "y": 4},
        claims={
            "sound": {"finds_error": False},
        },
    ),
    "delayed": PaperExample(
        name="delayed",
        section="§3.3 end",
        source=DELAYED_SRC,
        entry="delayed",
        initial_inputs={"x": 0, "y": 42},
        claims={
            "sound_delayed": {"finds_error": True},
            "higher_order": {"finds_error": True},
        },
    ),
}
