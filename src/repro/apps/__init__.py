"""Application substrates: hash zoo, paper examples, the §7 lexer."""

from .hashes import (
    codes_to_word,
    crc32,
    djb2,
    flex_hash,
    fnv1a,
    register_word_hash,
    sdbm,
    standard_registry,
    toy_block_cipher,
    word_to_codes,
)
from .paper_programs import (
    PAPER_EXAMPLES,
    PaperExample,
    make_paper_natives,
    paper_hash,
)
from .lexer_app import (
    DEFAULT_KEYWORDS,
    LexerApp,
    build_hardcoded_lexer_program,
    build_lexer_program,
    build_table_lexer_program,
    keyword_hashes,
)
from .protocol_app import (
    AUTH_SECRET_KEY,
    ProtocolApp,
    build_auth_app,
    build_protocol_app,
)
from .calculator_app import (
    COMMANDS,
    REGISTERS,
    CalculatorApp,
    build_calculator_app,
)
from .tinyvm_app import OPCODES, TinyVmApp, build_tinyvm_app

__all__ = [
    "codes_to_word",
    "crc32",
    "djb2",
    "flex_hash",
    "fnv1a",
    "register_word_hash",
    "sdbm",
    "standard_registry",
    "toy_block_cipher",
    "word_to_codes",
    "PAPER_EXAMPLES",
    "PaperExample",
    "make_paper_natives",
    "paper_hash",
    "DEFAULT_KEYWORDS",
    "LexerApp",
    "build_hardcoded_lexer_program",
    "build_lexer_program",
    "build_table_lexer_program",
    "keyword_hashes",
    "AUTH_SECRET_KEY",
    "ProtocolApp",
    "build_auth_app",
    "build_protocol_app",
    "COMMANDS",
    "REGISTERS",
    "CalculatorApp",
    "build_calculator_app",
    "OPCODES",
    "TinyVmApp",
    "build_tinyvm_app",
]
