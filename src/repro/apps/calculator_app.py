"""A staged command-language interpreter: lexing → parsing → evaluation.

The paper's §7 motivates higher-order test generation with "applications
with highly-structured inputs ... compilers and interpreters [that]
process their inputs in stages".  This application is a complete such
pipeline in miniature:

- **stage 1 (lexing)**: two input words (fixed-width character codes) are
  classified via the djb2 hash of each word against hard-recognized
  command/register keyword hashes;
- **stage 2 (parsing)**: the (command, register) token pair must form a
  grammatical sentence;
- **stage 3 (evaluation)**: a tiny register machine executes the command;
  one command sequence reaches a division and can crash it.

Reaching stage 3 requires synthesizing *two* keyword-shaped words in one
input vector — a strictly harder target than the single-keyword lexer of
:mod:`repro.apps.lexer_app`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..lang.parser import parse_program
from .hashes import djb2, word_to_codes

__all__ = ["CalculatorApp", "build_calculator_app", "COMMANDS", "REGISTERS"]

#: command keywords (stage-1 vocabulary, word 1)
COMMANDS: Tuple[str, ...] = ("load", "addi", "divi", "halt")
#: register keywords (stage-1 vocabulary, word 2)
REGISTERS: Tuple[str, ...] = ("ra", "rb")

_WIDTH = 4


@dataclass
class CalculatorApp:
    """A ready-to-test staged-interpreter bundle."""

    program: Program
    entry: str
    width: int
    input_names: Tuple[str, ...]

    def fresh_natives(self) -> NativeRegistry:
        registry = NativeRegistry()
        registry.register(
            "djb2", lambda *codes: djb2(codes) % 65521, arity=self.width
        )
        return registry

    def initial_inputs(
        self, command: str = "", register: str = "", operand: int = 0
    ) -> Dict[str, int]:
        cmd = word_to_codes(command, self.width)
        reg = word_to_codes(register, self.width)
        inputs = {f"w{i}": cmd[i] for i in range(self.width)}
        inputs.update({f"v{i}": reg[i] for i in range(self.width)})
        inputs["operand"] = operand
        return inputs


def _hash_init(words: Sequence[str], prefix: str) -> str:
    lines = []
    for word in words:
        codes = word_to_codes(word, _WIDTH)
        args = ", ".join(str(c) for c in codes)
        lines.append(f"    int h_{prefix}_{word} = djb2({args});")
    return "\n".join(lines)


def build_calculator_app() -> CalculatorApp:
    """Build the three-stage calculator program."""
    w_chars = ", ".join(f"int w{i}" for i in range(_WIDTH))
    v_chars = ", ".join(f"int v{i}" for i in range(_WIDTH))
    w_args = ", ".join(f"w{i}" for i in range(_WIDTH))
    v_args = ", ".join(f"v{i}" for i in range(_WIDTH))

    cmd_branches = "\n".join(
        f"""    if (hw == h_cmd_{cmd}) {{
        cmd_token = {i + 1};
    }}"""
        for i, cmd in enumerate(COMMANDS)
    )
    reg_branches = "\n".join(
        f"""    if (hv == h_reg_{reg}) {{
        reg_token = {i + 1};
    }}"""
        for i, reg in enumerate(REGISTERS)
    )

    source = f"""
// Auto-generated staged calculator interpreter
// stage 1: lexing via djb2 keyword hashes
// stage 2: grammar check (command requires a register operand)
// stage 3: register-machine evaluation

int lex_and_run({w_chars}, {v_chars}, int operand) {{
{_hash_init(COMMANDS, "cmd")}
{_hash_init(REGISTERS, "reg")}

    // ---- stage 1: lexing ----
    int hw = djb2({w_args});
    int hv = djb2({v_args});
    int cmd_token = 0;
    int reg_token = 0;
{cmd_branches}
{reg_branches}

    // ---- stage 2: parsing ----
    if (cmd_token == 0) {{
        return 0 - 1;           // unknown command word
    }}
    if (cmd_token == 4) {{
        return 100;             // halt takes no operands
    }}
    if (reg_token == 0) {{
        return 0 - 2;           // command requires a register
    }}

    // ---- stage 3: evaluation ----
    int ra = 10;
    int rb = 20;
    if (cmd_token == 1) {{      // load reg, operand
        if (reg_token == 1) {{ ra = operand; }} else {{ rb = operand; }}
        return ra + rb;
    }}
    if (cmd_token == 2) {{      // addi reg, operand
        if (reg_token == 1) {{ ra = ra + operand; }} else {{ rb = rb + operand; }}
        return ra + rb;
    }}
    if (cmd_token == 3) {{      // divi reg, operand
        if (operand == 0) {{
            error("stage-3 bug: division by zero operand");
        }}
        if (reg_token == 1) {{ ra = ra / operand; }} else {{ rb = rb / operand; }}
        return ra + rb;
    }}
    return 0;
}}

int main({w_chars}, {v_chars}, int operand) {{
    return lex_and_run({w_args}, {v_args}, operand);
}}
"""
    program = parse_program(source)
    names = tuple(
        [f"w{i}" for i in range(_WIDTH)]
        + [f"v{i}" for i in range(_WIDTH)]
        + ["operand"]
    )
    return CalculatorApp(
        program=program, entry="main", width=_WIDTH, input_names=names
    )
