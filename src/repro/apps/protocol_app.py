"""Checksum-guarded packet parser: the whitebox-fuzzing motivation.

The paper's lineage (SAGE [16], the Windows/Linux security-bug results
cited in §1) is about file and packet parsers whose early stages reject
malformed inputs via checksums — precisely the "unknown function"
imprecision HOTG addresses.  This application is a small packet protocol:

    packet = [kind, a, b, checksum]
    valid  ⟺  checksum == crc(kind, a, b)

Only valid packets reach the command dispatcher, where a bug hides behind
one command.  Forging the checksum requires *two-step* generation: the
strategy "set checksum := crc(kind₀,a₀,b₀)" references a CRC point never
sampled, so an intermediate run must evaluate it first — multi-step test
generation on a realistic shape.

A MAC-guarded variant (:func:`build_auth_app`) uses the toy block cipher
with a secret key baked into the program: the tag strategy is
``tag := cipher(message, SECRET)`` where SECRET never appears in any
constraint the solver can read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..lang.parser import parse_program
from .hashes import crc32, toy_block_cipher

__all__ = ["ProtocolApp", "build_protocol_app", "build_auth_app"]

#: command kinds of the toy protocol
CMD_PING = 1
CMD_READ = 2
CMD_WRITE = 3
CMD_RESET = 9


@dataclass
class ProtocolApp:
    """A ready-to-test protocol/auth application bundle."""

    program: Program
    entry: str
    input_names: Tuple[str, ...]
    make_natives: object  # zero-arg callable producing a fresh registry

    def fresh_natives(self) -> NativeRegistry:
        return self.make_natives()  # type: ignore[operator]

    def initial_inputs(self, **overrides: int) -> Dict[str, int]:
        inputs = {name: 0 for name in self.input_names}
        inputs.update(overrides)
        return inputs


_PROTOCOL_SRC = """
// Checksum-guarded packet dispatcher.
int dispatch(int kind, int a, int b) {
    if (kind == 1) {            // PING
        return 1;
    }
    if (kind == 2) {            // READ
        if (a < 0) {
            return 0 - 1;       // reject negative addresses
        }
        return 2;
    }
    if (kind == 3) {            // WRITE
        if (a == b) {
            error("write bug: aliasing addresses");
        }
        return 3;
    }
    if (kind == 9) {            // RESET
        if (a == 4242) {
            error("reset bug: magic argument");
        }
        return 9;
    }
    return 0;
}

int main(int kind, int a, int b, int checksum) {
    int expected = crc(kind, a, b);
    if (checksum != expected) {
        return 0 - 1;           // malformed packet: rejected early
    }
    return dispatch(kind, a, b);
}
"""


def build_protocol_app() -> ProtocolApp:
    """The CRC-guarded packet parser (bug behind kind=9, a=4242)."""

    def make_natives() -> NativeRegistry:
        registry = NativeRegistry()
        registry.register(
            "crc",
            lambda kind, a, b: crc32(
                [
                    (kind & 0xFF) or 1,
                    (a & 0xFF) or 1,
                    (b & 0xFF) or 1,
                ]
            )
            % 65521,
            arity=3,
        )
        return registry

    return ProtocolApp(
        program=parse_program(_PROTOCOL_SRC),
        entry="main",
        input_names=("kind", "a", "b", "checksum"),
        make_natives=make_natives,
    )


_AUTH_SRC = """
// MAC-guarded command executor: the key never leaves the cipher call.
int main(int message, int tag, int action) {
    int expected = mac(message);
    if (tag != expected) {
        return 0 - 1;           // authentication failure
    }
    if (message == 7777) {
        if (action == 3) {
            error("privileged action behind valid MAC");
        }
        return 2;
    }
    return 1;
}
"""

#: the secret key baked into the MAC; the solver never sees it
AUTH_SECRET_KEY = 0xC0FFEE


def build_auth_app() -> ProtocolApp:
    """The MAC-guarded executor (bug needs a valid tag for message 7777)."""

    def make_natives() -> NativeRegistry:
        registry = NativeRegistry()
        registry.register(
            "mac",
            lambda message: toy_block_cipher(message & 0xFFFFFFFF, AUTH_SECRET_KEY),
            arity=1,
        )
        return registry

    return ProtocolApp(
        program=parse_program(_AUTH_SRC),
        entry="main",
        input_names=("message", "tag", "action"),
        make_natives=make_natives,
    )
