"""A zoo of hash functions, implemented from scratch.

These play the role of the paper's "unknown functions": deterministic,
pure, but far outside the constraint solver's theory.  The flex-style
``hashfunct`` is a faithful port of the function in the paper's Figure 4
(file ``sym.c`` of flex 2.5.35); the others are classic string hashes plus
a CRC-32 implemented bit by bit.

String-valued functions are exposed in two forms:

- a Python form over byte sequences (used when building symbol tables),
- a fixed-arity integer form over character codes (``*_w<N>``), because
  MiniC models words as ``N`` integer inputs and uninterpreted functions
  have fixed arity.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..lang.natives import NativeRegistry

__all__ = [
    "flex_hash",
    "djb2",
    "fnv1a",
    "sdbm",
    "crc32",
    "toy_block_cipher",
    "word_to_codes",
    "codes_to_word",
    "register_word_hash",
    "standard_registry",
]

_MASK32 = 0xFFFFFFFF


def flex_hash(word: Sequence[int], table_size: int) -> int:
    """The flex scanner's ``hashfunct`` (paper Figure 4).

    ::

        hash_val = 0;
        while (*str) { hash_val = hash_val << 1 + *str++; ... }
        return hash_val % table_size

    (The historical flex code relies on C precedence: ``<< (1 + c)``; most
    reimplementations use ``(hash << 1) + c``, which we follow — the point
    is only that the function is opaque to symbolic reasoning.)
    """
    value = 0
    for code in word:
        if code == 0:
            break
        value = ((value << 1) + code) & _MASK32
    return value % table_size


def djb2(word: Sequence[int]) -> int:
    """Bernstein's classic ``hash * 33 + c`` string hash."""
    value = 5381
    for code in word:
        if code == 0:
            break
        value = ((value * 33) + code) & _MASK32
    return value


def fnv1a(word: Sequence[int]) -> int:
    """32-bit FNV-1a."""
    value = 0x811C9DC5
    for code in word:
        if code == 0:
            break
        value = ((value ^ (code & 0xFF)) * 0x01000193) & _MASK32
    return value


def sdbm(word: Sequence[int]) -> int:
    """The sdbm database library's string hash."""
    value = 0
    for code in word:
        if code == 0:
            break
        value = (code + (value << 6) + (value << 16) - value) & _MASK32
    return value


_CRC_POLY = 0xEDB88320


def crc32(word: Sequence[int]) -> int:
    """CRC-32 (IEEE 802.3), computed bit by bit — no lookup tables."""
    crc = _MASK32
    for code in word:
        if code == 0:
            break
        crc ^= code & 0xFF
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC_POLY
            else:
                crc >>= 1
    return crc ^ _MASK32


def toy_block_cipher(block: int, key: int) -> int:
    """A 32-bit toy Feistel-ish mixer: "crypto" the solver cannot see into."""
    left = (block >> 16) & 0xFFFF
    right = block & 0xFFFF
    k = key & _MASK32
    for round_index in range(4):
        rk = (k >> (8 * (round_index % 4))) & 0xFFFF
        f = ((right * 2654435761) ^ rk) & 0xFFFF
        left, right = right, left ^ f
    return ((left << 16) | right) & _MASK32


# ----------------------------------------------------------------- word codecs


def word_to_codes(word: str, width: int) -> Tuple[int, ...]:
    """Encode a string as a fixed-width tuple of char codes, 0-padded."""
    if len(word) > width:
        raise ValueError(f"word {word!r} longer than width {width}")
    codes = [ord(c) for c in word]
    codes.extend([0] * (width - len(codes)))
    return tuple(codes)


def codes_to_word(codes: Iterable[int]) -> str:
    """Decode a 0-padded code tuple back into a string (stop at 0)."""
    out = []
    for code in codes:
        if code == 0:
            break
        out.append(chr(code) if 32 <= code < 127 else "?")
    return "".join(out)


# -------------------------------------------------------------- registry helpers


def register_word_hash(
    registry: NativeRegistry,
    name: str,
    fn: Callable[[Sequence[int]], int],
    width: int,
) -> None:
    """Register a word hash as a fixed-arity native over ``width`` codes."""

    def native(*codes: int) -> int:
        return fn(codes)

    registry.register(name, native, arity=width)


def standard_registry(width: int = 4, table_size: int = 1 << 14) -> NativeRegistry:
    """A registry with the whole zoo, word hashes at the given width."""
    registry = NativeRegistry()
    registry.register(
        "flex_hash",
        lambda *codes: flex_hash(codes, table_size),
        arity=width,
    )
    register_word_hash(registry, "djb2", djb2, width)
    register_word_hash(registry, "fnv1a", fnv1a, width)
    register_word_hash(registry, "sdbm", sdbm, width)
    register_word_hash(registry, "crc32", crc32, width)
    registry.register("cipher", toy_block_cipher, arity=2)
    registry.register("hash", lambda y: (y * 2654435761 + 12345) % 65521, arity=1)
    return registry
