"""The service scheduler: many campaigns, one fleet, deterministic leases.

:class:`ServiceScheduler` is the
:class:`~repro.engine.supervisor.JobLeaseSource` behind ``repro
serve``.  Each :meth:`lease` call re-scans the durable queue (new
submissions and cancel markers are picked up between any two leases),
then grants one job under the policy:

1. **quota** — a tenant at its concurrent-lease quota is skipped;
2. **priority** — among eligible campaigns, highest priority wins;
3. **fair share** — ties go to the tenant with the fewest jobs
   currently leased (a tenant flooding the queue cannot starve the
   others: each of its finished jobs hands the comparison back);
4. **FIFO** — remaining ties go to the earliest submission, then jobs
   in sorted key order within a campaign.

Preemption is **job-granular by construction**: the supervisor only
asks for a lease when a fleet slot is free, so a higher-priority
submission wins the *next* slot, never a running job.

Everything the scheduler decides is recoverable: activation plans jobs
with the same :class:`~repro.engine.planner.BatchPlanner` expansion a
standalone campaign uses, completed jobs are filtered through the
campaign's ``jobs.jsonl`` checkpoint, and a finished campaign's report
is merged from checkpointed results — so a server killed at any point
resumes by re-reading the state dir, spends no attempt twice, and
produces a campaign digest byte-identical to an uninterrupted
standalone run (job results are pure functions of the job plus the
shared disk cache; interleaving cannot change them).

One cross-campaign invariant: a job *key* is leased by at most one
campaign at a time.  Two tenants submitting overlapping specs produce
jobs with equal keys; serializing those leases keeps the supervisor's
heartbeat routing and the scheduler's completion routing unambiguous
(and has no digest effect — equal keys mean equal jobs).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..engine.merger import ResultMerger
from ..engine.planner import BatchPlanner, CampaignSpec, SearchJob
from ..engine.runner import CampaignCheckpoint, JobResult
from ..engine.supervisor import JobLease, JobLeaseSource
from ..errors import ReproError
from ..faults import NULL_PLAN
from ..obs.shipper import merge_shards
from .state import ServiceState, SubmissionRecord

__all__ = ["ServiceScheduler"]


class _ActiveCampaign:
    """In-memory execution state of one activated submission."""

    __slots__ = (
        "record",
        "spec",
        "jobs",
        "pending",
        "leased",
        "results",
        "checkpoint",
        "directory",
        "resumed",
        "cancelled",
        "started",
    )

    def __init__(
        self,
        record: SubmissionRecord,
        spec: CampaignSpec,
        jobs: List[SearchJob],
        checkpoint: CampaignCheckpoint,
        directory: str,
    ) -> None:
        self.record = record
        self.spec = spec
        self.jobs = jobs
        #: jobs with no result yet, in sorted key order
        self.pending: List[SearchJob] = []
        #: keys currently granted to the fleet
        self.leased: set = set()
        #: settled results by key (checkpoint-loaded + freshly completed)
        self.results: Dict[str, JobResult] = {}
        self.checkpoint = checkpoint
        self.directory = directory
        #: jobs served from the checkpoint instead of re-run (restart)
        self.resumed = 0
        self.cancelled = False
        self.started = time.perf_counter()


class ServiceScheduler(JobLeaseSource):
    """Lease jobs from every queued campaign under the service policy."""

    def __init__(
        self,
        state: ServiceState,
        default_quota: int = 0,
        quotas: Optional[Dict[str, int]] = None,
        fault_plan=None,
        idle_exit: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.state = state
        #: max jobs a tenant may have leased at once (0 = unlimited)
        self.default_quota = int(default_quota)
        #: per-tenant quota overrides
        self.quotas = {str(k): int(v) for k, v in (quotas or {}).items()}
        #: plan consulted at the ``service`` fault site, once per lease
        self.plan = fault_plan if fault_plan is not None else NULL_PLAN
        #: when True, ``outstanding()`` goes False once nothing is active
        self.idle_exit = idle_exit
        self._log = log or (lambda message: None)
        #: activated campaigns by ticket, in activation order
        self._active: Dict[str, _ActiveCampaign] = {}
        #: cross-campaign lease routing: job key -> owning ticket
        self._leased_keys: Dict[str, str] = {}
        #: tickets already ingested (any terminal or active status)
        self._seen: set = set()

    # -- queue ingestion ---------------------------------------------------

    def refresh(self) -> None:
        """Fold queue changes: new submissions, restarts, cancellations."""
        for record in self.state.records():
            if record.ticket in self._seen:
                continue
            if record.status in ("done", "cancelled", "failed"):
                self._seen.add(record.ticket)
                continue
            self._seen.add(record.ticket)
            self._activate(record)
        for ticket in list(self._active):
            if self.state.cancel_requested(ticket):
                self._cancel(self._active[ticket])

    def _activate(self, record: SubmissionRecord) -> None:
        """Plan a queued/recovered submission onto the fleet."""
        directory = self.state.campaign_dir(record.ticket)
        try:
            spec = CampaignSpec.from_payload(record.spec).with_overrides(
                scheduler=record.options.get("scheduler"),  # type: ignore[arg-type]
                jobs=record.options.get("jobs"),  # type: ignore[arg-type]
                exec_backend=record.options.get("exec_backend"),  # type: ignore[arg-type]
                job_deadline=record.options.get("job_deadline"),  # type: ignore[arg-type]
            )
            jobs = BatchPlanner().expand(spec)
        except ReproError as exc:
            # a submission that cannot even plan is the client's bug,
            # never the fleet's: record it and keep serving the rest
            record.status = "failed"
            record.error = str(exc)
            self.state.update(record)
            self._log(f"[{record.ticket[:12]}] failed to plan: {exc}")
            return
        checkpoint = CampaignCheckpoint(directory)
        campaign = _ActiveCampaign(record, spec, jobs, checkpoint, directory)
        for job in jobs:
            saved = checkpoint.completed(job.key)
            if saved is not None:
                # restart recovery: the attempt ledger and result lines
                # in jobs.jsonl are authoritative — nothing is re-run,
                # no spent attempt fires again
                campaign.results[job.key] = saved
                campaign.resumed += 1
            else:
                campaign.pending.append(job)
        resumed = f", {campaign.resumed} resumed" if campaign.resumed else ""
        self._log(
            f"[{record.ticket[:12]}] activated: {len(jobs)} jobs"
            f"{resumed} (tenant={record.tenant}, priority={record.priority})"
        )
        if record.status != "running":
            record.status = "running"
            self.state.update(record)
        self._active[record.ticket] = campaign
        if not campaign.pending and not campaign.leased:
            # fully served by the checkpoint (e.g. killed after the last
            # job landed but before finalize): finish it right here
            self._finalize(campaign, "done")

    def _cancel(self, campaign: _ActiveCampaign) -> None:
        if not campaign.cancelled:
            campaign.cancelled = True
            campaign.pending.clear()
            self._log(
                f"[{campaign.record.ticket[:12]}] cancel requested: "
                f"{len(campaign.leased)} leased jobs will finish"
            )
        if not campaign.leased:
            self._finalize(campaign, "cancelled")

    # -- the JobLeaseSource protocol ---------------------------------------

    def lease(self) -> Optional[JobLease]:
        self.refresh()
        campaign, job = self._pick()
        if campaign is None or job is None:
            return None
        campaign.pending.remove(job)
        campaign.leased.add(job.key)
        self._leased_keys[job.key] = campaign.record.ticket
        # the ``service`` fault site: a stand-in for killing the server
        # right here, lease granted but job not yet dispatched — nothing
        # durable records the lease, so a restarted server re-leases it
        # and the recovered digest matches an uninterrupted run
        self.plan.fire("service")
        return JobLease(
            job=job,
            checkpoint=campaign.checkpoint,
            telemetry_dir=campaign.directory,
            tenant=campaign.record.tenant,
        )

    def _pick(self) -> "tuple[Optional[_ActiveCampaign], Optional[SearchJob]]":
        inflight = self._tenant_inflight()
        candidates = [
            c
            for c in self._active.values()
            if c.pending and not c.cancelled and not self._throttled(c, inflight)
        ]
        candidates.sort(
            key=lambda c: (
                -c.record.priority,
                inflight.get(c.record.tenant, 0),
                c.record.seq,
                c.record.ticket,
            )
        )
        for campaign in candidates:
            for job in campaign.pending:
                if job.key not in self._leased_keys:
                    return campaign, job
        return None, None

    def _throttled(
        self, campaign: _ActiveCampaign, inflight: Dict[str, int]
    ) -> bool:
        tenant = campaign.record.tenant
        quota = self.quotas.get(tenant, self.default_quota)
        return quota > 0 and inflight.get(tenant, 0) >= quota

    def _tenant_inflight(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ticket in self._leased_keys.values():
            campaign = self._active.get(ticket)
            if campaign is not None:
                tenant = campaign.record.tenant
                counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def outstanding(self) -> bool:
        if self._active:
            return True
        return not self.idle_exit

    def completed(self, result: JobResult) -> None:
        ticket = self._leased_keys.pop(result.key, None)
        campaign = self._active.get(ticket) if ticket else None
        if campaign is None:
            return
        campaign.leased.discard(result.key)
        campaign.results[result.key] = result
        campaign.checkpoint.record(result)
        if campaign.cancelled:
            if not campaign.leased:
                self._finalize(campaign, "cancelled")
        elif len(campaign.results) == len(campaign.jobs):
            self._finalize(campaign, "done")

    def released(self, job: SearchJob) -> None:
        ticket = self._leased_keys.pop(job.key, None)
        campaign = self._active.get(ticket) if ticket else None
        if campaign is None:
            return
        campaign.leased.discard(job.key)
        campaign.pending.append(job)
        campaign.pending.sort(key=lambda j: j.key)

    # -- finalization ------------------------------------------------------

    def _finalize(self, campaign: _ActiveCampaign, status: str) -> None:
        """Merge, publish ``result.json``, mark the record terminal."""
        record = campaign.record
        results = list(campaign.results.values())
        report = ResultMerger().merge(
            results,
            seconds=time.perf_counter() - campaign.started,
            killed_workers=sum(1 for r in results if r.killed_worker),
            resumed_jobs=campaign.resumed,
            retried_jobs=sum(max(0, r.attempts - 1) for r in results),
            quarantined_jobs=[r.key for r in results if r.quarantined],
            stalled_jobs=sum(1 for r in results if r.stalled),
        )
        try:
            _, report.journal_events = merge_shards(campaign.directory)
            report.telemetry_dir = campaign.directory
        except OSError:
            report.telemetry_dir = campaign.directory
        self.state.write_result(record.ticket, report)
        record.status = status
        self.state.update(record)
        self._active.pop(record.ticket, None)
        self._log(
            f"[{record.ticket[:12]}] {status}: {report.summary()} "
            f"digest={report.campaign_digest}"
        )
