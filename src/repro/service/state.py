"""The service's durable state machine: a fanout-dir submission queue.

Layout under a ``--state-dir``::

    <state-dir>/
      queue/
        <ticket>.json     one submission record (atomic temp+rename)
        <ticket>.cancel   cancellation marker (empty file)
      campaigns/
        <ticket>/
          jobs.jsonl      the campaign's checkpoint + attempt ledger
          shards/         per-job telemetry shards (heartbeats, events)
          campaign.jsonl  merged telemetry stream (written at finalize)
          result.json     the finished CampaignReport payload

Everything is plain files with atomic publication (write to a temp
file in the same directory, then :func:`os.replace`), so a SIGKILL'd
server never leaves a half-written record, and a concurrent client
only ever observes an absent or complete file.  There is no lock and
no daemon-side socket: clients *submit* by dropping a record into
``queue/``, *cancel* by dropping a marker, and *observe* by reading —
the server is the only writer of campaign state, clients are the only
writers of submissions.

Tickets are **content-addressed**: the SHA-256 of the canonical JSON of
``(spec payload, options, tenant)``.  Resubmitting an identical
campaign is therefore idempotent (same ticket, same record, one
execution), and a ticket is a *campaign digest* in the submission
sense: it names what was asked for, while the report's
``campaign_digest`` names what came out.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.merger import CampaignReport
from ..errors import ReproError

__all__ = [
    "QUEUE_DIR",
    "CAMPAIGNS_DIR",
    "RESULT_FILE",
    "SUBMISSION_FORMAT",
    "submission_ticket",
    "SubmissionRecord",
    "ServiceState",
    "is_service_dir",
]

#: submissions live under <state-dir>/queue/
QUEUE_DIR = "queue"
#: per-campaign working directories live under <state-dir>/campaigns/
CAMPAIGNS_DIR = "campaigns"
#: the finished report payload inside a campaign directory
RESULT_FILE = "result.json"

#: submission record schema version (stale records self-invalidate)
SUBMISSION_FORMAT = 1

#: submission lifecycle states, in the order they normally occur
STATUSES = ("queued", "running", "done", "cancelled", "failed")


def submission_ticket(
    spec_payload: Dict[str, object],
    options: Dict[str, object],
    tenant: str,
) -> str:
    """Content-addressed ticket for a submission (SHA-256 hex).

    A pure function of *what was asked for* — the spec payload, the
    per-submission option overrides, and the tenant — so identical
    submissions dedup onto one campaign.  Priority is deliberately
    excluded: resubmitting the same work at a different priority should
    find the existing campaign, not fork a second one.
    """
    blob = json.dumps(
        {"spec": spec_payload, "options": options, "tenant": tenant},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _write_atomic(path: str, text: str) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class SubmissionRecord:
    """One durable submission: a campaign spec plus queueing metadata."""

    ticket: str
    #: tenant the submission bills against (fair-share + quota unit)
    tenant: str = "default"
    #: higher wins the next free fleet slot; never preempts a running job
    priority: int = 0
    #: submission order within this state dir (FIFO tie-break)
    seq: int = 0
    status: str = "queued"
    #: CampaignSpec payload (see CampaignSpec.as_payload)
    spec: Dict[str, object] = field(default_factory=dict)
    #: per-submission overrides: scheduler, jobs, exec_backend, job_deadline
    options: Dict[str, object] = field(default_factory=dict)
    #: why a failed submission failed (planning error, bad spec, ...)
    error: str = ""
    #: unix time of submission (informational; ordering uses seq)
    submitted_at: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "format": SUBMISSION_FORMAT,
            "ticket": self.ticket,
            "tenant": self.tenant,
            "priority": self.priority,
            "seq": self.seq,
            "status": self.status,
            "spec": dict(self.spec),
            "options": dict(self.options),
            "error": self.error,
            "submitted_at": self.submitted_at,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SubmissionRecord":
        if payload.get("format") != SUBMISSION_FORMAT:
            raise ReproError(
                f"submission format {payload.get('format')!r} "
                f"!= {SUBMISSION_FORMAT}"
            )
        status = str(payload.get("status", "queued"))
        if status not in STATUSES:
            raise ReproError(f"unknown submission status {status!r}")
        return cls(
            ticket=str(payload["ticket"]),
            tenant=str(payload.get("tenant", "default")),
            priority=int(payload.get("priority", 0)),  # type: ignore[call-overload]
            seq=int(payload.get("seq", 0)),  # type: ignore[call-overload]
            status=status,
            spec=dict(payload.get("spec", {})),
            options=dict(payload.get("options", {})),
            error=str(payload.get("error", "")),
            submitted_at=float(payload.get("submitted_at", 0.0)),  # type: ignore[arg-type]
        )


def is_service_dir(path: str) -> bool:
    """Does ``path`` look like a service state dir (has a ``queue/``)?"""
    return os.path.isdir(os.path.join(path, QUEUE_DIR))


class ServiceState:
    """Read/write access to one state dir, shared by server and clients."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = os.path.abspath(state_dir)
        self.queue_dir = os.path.join(self.state_dir, QUEUE_DIR)
        self.campaigns_dir = os.path.join(self.state_dir, CAMPAIGNS_DIR)
        os.makedirs(self.queue_dir, exist_ok=True)
        os.makedirs(self.campaigns_dir, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def record_path(self, ticket: str) -> str:
        return os.path.join(self.queue_dir, f"{ticket}.json")

    def cancel_path(self, ticket: str) -> str:
        return os.path.join(self.queue_dir, f"{ticket}.cancel")

    def campaign_dir(self, ticket: str) -> str:
        """The campaign's working directory (created on demand).

        It doubles as the campaign's checkpoint *and* telemetry
        directory, so ``repro stats <dir>`` and the supervisor's
        heartbeat watchdog work on it unchanged.
        """
        path = os.path.join(self.campaigns_dir, ticket)
        os.makedirs(path, exist_ok=True)
        return path

    # -- submissions -------------------------------------------------------

    def submit(
        self,
        spec_payload: Dict[str, object],
        priority: int = 0,
        tenant: str = "default",
        options: Optional[Dict[str, object]] = None,
    ) -> "tuple[SubmissionRecord, bool]":
        """Durably enqueue a submission; returns ``(record, created)``.

        Content-addressed dedup: an identical pending or finished
        submission is returned as-is (``created=False``) instead of
        being queued twice.
        """
        options = dict(options or {})
        ticket = submission_ticket(spec_payload, options, tenant)
        existing = self.load(ticket)
        if existing is not None:
            return existing, False
        record = SubmissionRecord(
            ticket=ticket,
            tenant=str(tenant),
            priority=int(priority),
            seq=self._next_seq(),
            status="queued",
            spec=dict(spec_payload),
            options=options,
            submitted_at=time.time(),
        )
        self.update(record)
        return record, True

    def load(self, ticket: str) -> Optional[SubmissionRecord]:
        try:
            with open(self.record_path(ticket), "r", encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            return SubmissionRecord.from_payload(payload)
        except (ReproError, KeyError, ValueError, TypeError):
            return None

    def records(self) -> List[SubmissionRecord]:
        """Every readable submission, in ``(seq, ticket)`` order."""
        try:
            names = os.listdir(self.queue_dir)
        except OSError:
            return []
        out: List[SubmissionRecord] = []
        for name in names:
            if not name.endswith(".json"):
                continue
            record = self.load(name[: -len(".json")])
            if record is not None:
                out.append(record)
        out.sort(key=lambda r: (r.seq, r.ticket))
        return out

    def update(self, record: SubmissionRecord) -> None:
        """Atomically (re)publish a submission record."""
        _write_atomic(
            self.record_path(record.ticket),
            json.dumps(record.to_payload(), sort_keys=True, indent=2) + "\n",
        )

    def _next_seq(self) -> int:
        return max((r.seq for r in self.records()), default=0) + 1

    # -- cancellation ------------------------------------------------------

    def request_cancel(self, ticket: str) -> bool:
        """Drop a cancel marker; False when the ticket is unknown.

        Cancellation is cooperative and job-granular, mapping onto the
        engine's interrupt machinery: pending jobs are dropped, jobs
        already running finish normally (their results are kept), and
        the campaign finalizes as ``cancelled`` with a partial report.
        """
        record = self.load(ticket)
        if record is None:
            return False
        with open(self.cancel_path(ticket), "a", encoding="utf-8"):
            pass
        return True

    def cancel_requested(self, ticket: str) -> bool:
        return os.path.exists(self.cancel_path(ticket))

    # -- results -----------------------------------------------------------

    def result_path(self, ticket: str) -> str:
        return os.path.join(self.campaigns_dir, ticket, RESULT_FILE)

    def write_result(self, ticket: str, report: CampaignReport) -> None:
        _write_atomic(
            self.result_path(ticket),
            json.dumps(report.to_payload(), sort_keys=True) + "\n",
        )

    def load_result(self, ticket: str) -> Optional[CampaignReport]:
        try:
            with open(self.result_path(ticket), "r", encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            return CampaignReport.from_payload(payload)
        except (ReproError, KeyError, ValueError, TypeError):
            return None

    # -- lookup ------------------------------------------------------------

    def resolve(self, prefix: str) -> str:
        """Expand a ticket prefix to the full ticket (errors if ambiguous)."""
        prefix = prefix.strip()
        if not prefix:
            raise ReproError("empty ticket")
        matches = sorted(
            r.ticket for r in self.records() if r.ticket.startswith(prefix)
        )
        if not matches:
            raise ReproError(
                f"no submission matches ticket {prefix!r} "
                f"in {self.state_dir}"
            )
        if len(matches) > 1:
            raise ReproError(
                f"ticket prefix {prefix!r} is ambiguous "
                f"({len(matches)} matches); use more characters"
            )
        return matches[0]
