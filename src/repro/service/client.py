"""The client surface of the campaign service.

:class:`ServiceClient` talks to a server through the state dir alone —
no socket, no RPC.  Submitting drops a durable record into ``queue/``
(the server picks it up on its next lease), cancellation drops a
marker, progress streams by tailing the campaign's telemetry shards,
and results are read back from ``result.json`` — which works even
after the server has exited, because the state dir *is* the service.

:class:`ServiceHandle` is the ticket-scoped view:
``handle.wait()``, ``handle.stream_events()``, ``handle.result()``,
``handle.cancel()`` — the same contract as
:class:`repro.api.CampaignHandle`, which wraps this class when a
``state_dir`` is given.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

from ..engine.merger import CampaignReport
from ..engine.planner import resolve_spec
from ..errors import ReproError, SearchInterrupted
from ..obs.shipper import ShardReader
from .state import ServiceState, SubmissionRecord

__all__ = ["ServiceClient", "ServiceHandle"]

#: submission states with nothing left to wait for
TERMINAL = ("done", "cancelled", "failed")


class ServiceHandle:
    """One submission, addressed by ticket; all methods re-read disk."""

    def __init__(self, state: ServiceState, ticket: str) -> None:
        self._state = state
        self.ticket = ticket

    def __repr__(self) -> str:
        return f"ServiceHandle({self.ticket[:12]}, {self.status()})"

    def record(self) -> SubmissionRecord:
        record = self._state.load(self.ticket)
        if record is None:
            raise ReproError(
                f"submission {self.ticket[:12]} vanished from "
                f"{self._state.state_dir}"
            )
        return record

    def status(self) -> str:
        """``queued`` | ``running`` | ``done`` | ``cancelled`` | ``failed``."""
        return self.record().status

    def done(self) -> bool:
        return self.status() in TERMINAL

    def wait(
        self, timeout: Optional[float] = None, poll: float = 0.2
    ) -> CampaignReport:
        """Block until terminal; return the report.

        Raises :class:`SearchInterrupted` if the submission was
        cancelled, :class:`ReproError` if it failed or ``timeout``
        (seconds) elapsed first.  Requires a running server to make
        progress — this client never executes jobs itself.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status()
            if status in TERMINAL:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise ReproError(
                    f"timed out after {timeout:g}s waiting for "
                    f"{self.ticket[:12]} (status: {status}) — "
                    f"is `repro serve` running on this state dir?"
                )
            time.sleep(poll)
        if status == "failed":
            raise ReproError(
                f"submission {self.ticket[:12]} failed: {self.record().error}"
            )
        if status == "cancelled":
            report = self._state.load_result(self.ticket)
            raise SearchInterrupted(
                f"submission {self.ticket[:12]} was cancelled "
                f"({len(report.jobs) if report else 0} jobs completed)",
            )
        return self.result()

    def result(self) -> CampaignReport:
        """The finished report; raises if not (yet) available."""
        report = self._state.load_result(self.ticket)
        if report is None:
            raise ReproError(
                f"no result yet for {self.ticket[:12]} "
                f"(status: {self.status()})"
            )
        return report

    def cancel(self) -> bool:
        """Request cooperative cancellation; False if already terminal."""
        if self.done():
            return False
        return self._state.request_cancel(self.ticket)

    def stream_events(
        self, poll: float = 0.2, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Yield telemetry events as the campaign runs (tail the shards).

        Events are the journal stream each job ships (``job_started``,
        per-N-runs heartbeats, ``job_finished`` seals), tagged with the
        owning ``job`` key.  The iterator ends once the submission is
        terminal and the shards have gone quiet; it never raises on
        cancellation (the point of streaming is to watch whatever
        happened).
        """
        reader = ShardReader(self._state.campaign_dir(self.ticket))
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            events = reader.poll()
            for job, event in events:
                yield dict(event, job=job)
            status = self.status()
            if status in TERMINAL and not events:
                # one last drain: a seal written between poll() and
                # status() would otherwise be dropped
                for job, event in reader.poll():
                    yield dict(event, job=job)
                return
            if deadline is not None and time.monotonic() >= deadline:
                return
            if not events:
                time.sleep(poll)


class ServiceClient:
    """Submit, observe, and fetch campaigns against one state dir."""

    def __init__(self, state_dir: str) -> None:
        self.state = ServiceState(state_dir)

    def submit(
        self,
        spec,
        priority: int = 0,
        tenant: str = "default",
        scheduler: Optional[str] = None,
        jobs: Optional[int] = None,
        exec_backend: Optional[str] = None,
        job_deadline: Optional[float] = None,
    ) -> ServiceHandle:
        """Enqueue a campaign; returns its handle immediately.

        ``spec`` accepts everything :func:`repro.api.run_campaign` did:
        a :class:`~repro.engine.planner.CampaignSpec`, a payload dict,
        the literal ``"paper"``, or a spec-file path.  Identical
        submissions (same spec, options, tenant) dedup onto the
        existing ticket rather than queueing twice.
        """
        payload = resolve_spec(spec).as_payload()
        options: Dict[str, object] = {}
        if scheduler is not None:
            options["scheduler"] = scheduler
        if jobs is not None:
            options["jobs"] = jobs
        if exec_backend is not None:
            options["exec_backend"] = exec_backend
        if job_deadline is not None:
            options["job_deadline"] = job_deadline
        record, _created = self.state.submit(
            payload, priority=priority, tenant=tenant, options=options
        )
        return ServiceHandle(self.state, record.ticket)

    def handle(self, ticket: str) -> ServiceHandle:
        """A handle for an existing submission (ticket prefixes allowed)."""
        return ServiceHandle(self.state, self.state.resolve(ticket))

    def submissions(self) -> List[SubmissionRecord]:
        """Every submission in the state dir, in submission order."""
        return self.state.records()
