"""The campaign service: a persistent multi-campaign scheduler.

``repro serve`` turns the batch engine into a long-running front door:
clients drop campaign submissions (a
:class:`~repro.engine.planner.CampaignSpec` plus a priority and a
tenant) into a durable filesystem queue under a ``--state-dir``; the
service leases jobs from *every* queued campaign onto one shared
:class:`~repro.engine.supervisor.CampaignSupervisor`-driven worker
fleet; results are retrieved by content-addressed ticket after the
fact, surviving server restarts.

The pieces:

- :mod:`repro.service.state` — the durable state machine: submission
  records, cancel markers, per-campaign directories, result payloads;
- :mod:`repro.service.scheduler` — the lease source: fair-share across
  tenants, per-tenant quotas, priority preemption at job granularity;
- :mod:`repro.service.server` — :class:`CampaignService`, the ``repro
  serve`` loop;
- :mod:`repro.service.client` — :class:`ServiceClient`, the library
  surface ``repro submit`` / ``status`` / ``results`` / ``cancel``
  (and :class:`repro.api.Client` in service mode) are built on.

See docs/SERVICE.md for the state-dir layout, the lease protocol, and
quota semantics.
"""

from .client import ServiceClient
from .scheduler import ServiceScheduler
from .server import CampaignService
from .state import SubmissionRecord, ServiceState, is_service_dir

__all__ = [
    "CampaignService",
    "ServiceClient",
    "ServiceScheduler",
    "ServiceState",
    "SubmissionRecord",
    "is_service_dir",
]
