"""The ``repro serve`` loop: one fleet serving every queued campaign.

:class:`CampaignService` wires the pieces together: a
:class:`~repro.service.state.ServiceState` over the ``--state-dir``, a
:class:`~repro.service.scheduler.ServiceScheduler` as the lease
source, and a :class:`~repro.engine.runner.ProcessPoolRunner` whose
supervisor drives the shared worker fleet in serve mode.  All of PR
8's recovery ladder applies per leased job — cooperative deadlines,
the heartbeat watchdog (tailing each campaign's own shard directory),
bounded deterministic retry against the campaign's attempt ledger, and
quarantine — while graceful shutdown (SIGINT/SIGTERM) drains in-flight
jobs, releases unstarted leases back to their campaigns, and exits
with a resume hint.  A *non*-graceful death (SIGKILL, power loss) is
recovered the same way a restart is: everything the scheduler needs is
on disk.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..engine.runner import JobResult, ProcessPoolRunner
from ..engine.supervisor import SupervisorConfig
from ..errors import SearchInterrupted
from ..faults import FaultPlan, current_fault_plan
from ..obs.shipper import merge_shards
from .scheduler import ServiceScheduler
from .state import ServiceState

__all__ = ["CampaignService"]


class CampaignService:
    """Run the scheduler loop over a state dir until idle or stopped."""

    def __init__(
        self,
        state_dir: str,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        fault_plan: str = "",
        job_deadline: Optional[float] = None,
        max_attempts: Optional[int] = None,
        stall_timeout: Optional[float] = None,
        default_quota: int = 0,
        quotas: Optional[Dict[str, int]] = None,
        poll_interval: Optional[float] = None,
        idle_exit: bool = False,
        progress: Optional[Callable[[JobResult], None]] = None,
        log: Optional[Callable[[str], None]] = None,
        store_dir: Optional[str] = None,
        store_max_bytes: Optional[int] = None,
        seed_from_store: bool = False,
    ) -> None:
        self.state = ServiceState(state_dir)
        policy: Dict[str, object] = {}
        if job_deadline is not None:
            policy["job_deadline"] = job_deadline
        if max_attempts is not None:
            policy["max_attempts"] = max_attempts
        if stall_timeout is not None:
            # always safe here: every leased job ships shards into its
            # campaign's own directory, so the watchdog has heartbeats
            # to tail no matter how the campaign was submitted
            policy["stall_timeout"] = stall_timeout
        if poll_interval is not None:
            policy["poll_interval"] = poll_interval
        config = SupervisorConfig(**policy)  # type: ignore[arg-type]
        self.runner = ProcessPoolRunner(
            workers=workers,
            cache_dir=cache_dir,
            fault_spec=fault_plan,
            telemetry_dir=None,
            supervisor=config.validate(),
            store_dir=store_dir,
            seed_from_store=seed_from_store,
        )
        #: gc budget applied to the shared store when the serve loop exits
        self.store_max_bytes = store_max_bytes
        plan = (
            FaultPlan.parse(fault_plan) if fault_plan else current_fault_plan()
        )
        self.scheduler = ServiceScheduler(
            self.state,
            default_quota=default_quota,
            quotas=quotas,
            fault_plan=plan,
            idle_exit=idle_exit,
            log=log,
        )
        self._progress = progress

    def serve(self) -> int:
        """Lease and run jobs until the queue drains (or forever).

        Returns the number of jobs settled by this server process.  A
        graceful shutdown raises :class:`SearchInterrupted` with a
        ``repro serve`` resume hint after releasing unstarted leases;
        re-running the hinted command resumes every affected campaign
        from its checkpoint.
        """
        try:
            settled = self.runner.serve(self.scheduler, progress=self._progress)
            self._gc_store()
            return settled
        except SearchInterrupted as exc:
            for campaign in self.scheduler._active.values():
                try:
                    # publish what telemetry there is, so `repro stats`
                    # on the interrupted campaign shows the truth
                    merge_shards(campaign.directory)
                except OSError:
                    pass
            if exc.resume_hint is None:
                exc.resume_hint = f"repro serve --state-dir {self.state.state_dir}"
            exc.checkpoint_dir = self.state.state_dir
            raise

    def _gc_store(self) -> None:
        """Enforce the store's size budget once the fleet is quiet.

        Eviction is answer-neutral: a re-run recomputes anything evicted
        and lands on byte-identical digests, so gc can run at any quiet
        point without coordinating with tenants.
        """
        if self.runner.store_dir is None or self.store_max_bytes is None:
            return
        from ..store import ContentStore

        ContentStore(self.runner.store_dir).gc(self.store_max_bytes)
